"""Tests for the profile/synthetic consistency diagnostics."""

import pytest

from repro.core.profiler import profile_trace
from repro.core.synthesis import generate_synthetic_trace
from repro.core.validation import (
    drift_report,
    format_drift_report,
    profile_rates,
    synthetic_rates,
)


@pytest.fixture
def profile(small_trace, config):
    return profile_trace(small_trace, config, order=1)


@pytest.fixture
def synthetic(profile):
    return generate_synthetic_trace(profile, 2, seed=0)


class TestProfileRates:
    def test_rates_are_probabilities(self, profile):
        rates = profile_rates(profile)
        for key, value in rates.as_dict().items():
            if key.endswith(("fraction", "rate")):
                assert 0.0 <= value <= 1.0, key

    def test_load_fraction_matches_trace(self, profile, small_trace):
        rates = profile_rates(profile)
        # The profile covers the trace minus a possible partial block.
        from repro.isa.iclass import IClass

        mix = small_trace.instruction_mix()
        assert rates.load_fraction == pytest.approx(
            mix.get(IClass.LOAD, 0.0), abs=0.02)

    def test_taken_rate_in_sane_band(self, profile):
        assert 0.2 < profile_rates(profile).taken_rate < 1.0


class TestSyntheticRates:
    def test_rates_match_summary(self, synthetic):
        rates = synthetic_rates(synthetic)
        summary = synthetic.summary()
        assert rates.load_fraction == pytest.approx(
            summary["load_fraction"])
        assert rates.misprediction_rate == pytest.approx(
            summary["misprediction_rate"])

    def test_dependency_statistics(self, synthetic):
        rates = synthetic_rates(synthetic)
        assert rates.dependencies_per_instruction > 0
        assert rates.mean_dependency_distance >= 1.0


class TestDriftReport:
    def test_low_reduction_low_drift(self, profile):
        synthetic = generate_synthetic_trace(profile, 1, seed=0)
        report = drift_report(profile, synthetic, threshold=0.08)
        # Mix, branch and distance characteristics reproduce closely at
        # R=1; dependency *counts* legitimately drift (step 4 squashes
        # dependencies whose sampled producer lands on a branch/store).
        core_keys = ("load_fraction", "branch_fraction", "taken_rate",
                     "misprediction_rate", "mean_dependency_distance")
        for key in core_keys:
            assert "flagged" not in report[key], (key, report[key])

    def test_dependency_squashing_is_visible(self, profile):
        # The diagnostic exists to surface exactly this effect.
        synthetic = generate_synthetic_trace(profile, 1, seed=0)
        report = drift_report(profile, synthetic)
        entry = report["dependencies_per_instruction"]
        assert entry["realized"] <= entry["expected"]

    def test_report_structure(self, profile, synthetic):
        report = drift_report(profile, synthetic)
        for key, entry in report.items():
            absolute = abs(entry["expected"] - entry["realized"])
            if key in ("dependencies_per_instruction",
                       "mean_dependency_distance") and entry["expected"]:
                assert entry["drift"] == pytest.approx(
                    absolute / entry["expected"])
            else:
                assert entry["drift"] == pytest.approx(absolute)

    def test_formatting(self, profile, synthetic):
        text = format_drift_report(drift_report(profile, synthetic))
        assert "load_fraction" in text
        assert "expected" in text
