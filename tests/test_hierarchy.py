"""Tests for the cache hierarchy and its latency rules."""

import pytest

from repro.config import MachineConfig, baseline_config
from repro.cache.hierarchy import (
    CacheHierarchy,
    DataAccessResult,
    InstructionAccessResult,
)


@pytest.fixture
def hierarchy(config):
    return CacheHierarchy(config)


class TestAccessPaths:
    def test_cold_instruction_misses_all_levels(self, hierarchy):
        result = hierarchy.access_instruction(0x1000)
        assert result.il1_miss and result.l2_miss and result.itlb_miss

    def test_warm_instruction_hits(self, hierarchy):
        hierarchy.access_instruction(0x1000)
        result = hierarchy.access_instruction(0x1000)
        assert not result.il1_miss
        assert not result.itlb_miss

    def test_l2_only_accessed_on_l1_miss(self, hierarchy):
        hierarchy.access_instruction(0x1000)
        hierarchy.access_instruction(0x1000)
        assert hierarchy.l2_instruction_accesses == 1

    def test_data_and_instruction_l2_counted_separately(self, hierarchy):
        hierarchy.access_instruction(0x1000)
        hierarchy.access_data(0x9000)
        assert hierarchy.l2_instruction_accesses == 1
        assert hierarchy.l2_data_accesses == 1
        assert hierarchy.l2_instruction_misses == 1
        assert hierarchy.l2_data_misses == 1

    def test_unified_l2_shared(self, hierarchy):
        # An instruction fill brings the line into the unified L2; a
        # data access to the same line then hits in L2.
        hierarchy.access_instruction(0x4000)
        result = hierarchy.access_data(0x4000)
        assert result.dl1_miss
        assert not result.l2_miss

    def test_six_miss_rates_reported(self, hierarchy):
        hierarchy.access_instruction(0x1000)
        hierarchy.access_data(0x2000)
        rates = hierarchy.miss_rates()
        assert set(rates) == {"il1", "l2_instruction", "dl1", "l2_data",
                              "itlb", "dtlb"}
        assert all(0.0 <= value <= 1.0 for value in rates.values())


class TestLatencies:
    def test_load_latency_levels(self, hierarchy, config):
        hit = DataAccessResult(False, False, False)
        l1_miss = DataAccessResult(True, False, False)
        l2_miss = DataAccessResult(True, True, False)
        assert hierarchy.load_latency(hit) == config.dl1.hit_latency
        assert hierarchy.load_latency(l1_miss) == config.l2.hit_latency
        assert hierarchy.load_latency(l2_miss) == config.memory_latency

    def test_dtlb_miss_adds_penalty(self, hierarchy, config):
        with_tlb = DataAccessResult(False, False, True)
        assert hierarchy.load_latency(with_tlb) == \
            config.dl1.hit_latency + config.dtlb.miss_latency

    def test_fetch_stall_levels(self, hierarchy, config):
        assert hierarchy.fetch_stall(
            InstructionAccessResult(False, False, False)) == 0
        assert hierarchy.fetch_stall(
            InstructionAccessResult(True, False, False)) == \
            config.l2.hit_latency
        assert hierarchy.fetch_stall(
            InstructionAccessResult(True, True, False)) == \
            config.memory_latency

    def test_itlb_miss_adds_stall(self, hierarchy, config):
        assert hierarchy.fetch_stall(
            InstructionAccessResult(False, False, True)) == \
            config.itlb.miss_latency


class TestScaling:
    def test_smaller_cache_misses_more(self):
        base = baseline_config()
        small = CacheHierarchy(base.with_cache_scale(0.25))
        large = CacheHierarchy(base)
        addresses = [i * 32 for i in range(2000)] * 2
        small_misses = sum(small.access_data(a).dl1_miss
                           for a in addresses)
        large_misses = sum(large.access_data(a).dl1_miss
                           for a in addresses)
        assert small_misses >= large_misses
