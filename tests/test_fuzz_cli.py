"""The ``repro fuzz`` subcommand: determinism, chaos canary, replay."""

import json
from pathlib import Path

from repro.cli import main
from repro.fuzz.corpus import list_entries, load_entry


class TestFuzzCommand:
    def test_green_run_exits_zero(self, capsys):
        assert main(["fuzz", "--cases", "4", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "4 ok" in out

    def test_identical_invocations_identical_stats(self, tmp_path,
                                                   capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["fuzz", "--cases", "5", "--seed", "7",
                     "--stats-only", str(first)]) == 0
        assert main(["fuzz", "--cases", "5", "--seed", "7",
                     "--stats-only", str(second)]) == 0
        assert first.read_text() == second.read_text()
        payload = json.loads(first.read_text())
        assert payload["schema"] == 1
        assert payload["cases"] == 5
        assert payload["seed"] == 7
        assert payload["verdicts"]["ok"] == 5
        assert payload["acceptance_margins"]
        for stats in payload["acceptance_margins"].values():
            assert stats["min"] > 0

    def test_bad_chaos_spec_exits_two(self, capsys):
        assert main(["fuzz", "--cases", "1",
                     "--chaos", "no-such-site:rate=1"]) == 2

    def test_replay_requires_corpus(self, capsys):
        assert main(["fuzz", "--replay"]) == 2


class TestSkewCanary:
    """End-to-end acceptance: an injected discrepancy is caught,
    minimized to <= 25% of the original program, corpus-filed, and the
    entry replays green without chaos."""

    def test_injected_skew_caught_minimized_and_replayable(
            self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        status = main([
            "fuzz", "--cases", "4", "--seed", "7",
            "--corpus", str(corpus),
            "--chaos", "seed=1;pipeline-skew:rate=1.0,match=case002",
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "differential" in out

        paths = list_entries(str(corpus))
        assert len(paths) == 1
        entry = load_entry(paths[0])
        assert entry.case_id == "case002"
        assert entry.skew_injected
        assert entry.kind == "differential"
        minimization = entry.minimization
        assert (minimization["minimized_size"]
                <= minimization["original_size"] // 4), minimization

        # Chaos off: the pinned "bug" is gone, replay is green.
        assert main(["fuzz", "--replay", "--corpus", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_no_minimize_files_unshrunk(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        status = main([
            "fuzz", "--cases", "3", "--seed", "7",
            "--corpus", str(corpus), "--no-minimize",
            "--chaos", "seed=1;pipeline-skew:rate=1.0,match=case001",
        ])
        assert status == 1
        entry = load_entry(list_entries(str(corpus))[0])
        assert entry.minimization == {}
