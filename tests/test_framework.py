"""Integration tests for the end-to-end statistical simulation API."""

import pytest

from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
    simulate_synthetic_trace,
)
from repro.core.metrics import absolute_error
from repro.core.profiler import profile_trace


class TestRunExecutionDriven:
    def test_returns_result_and_power(self, small_trace, config):
        result, power = run_execution_driven(small_trace, config)
        assert result.instructions == len(small_trace)
        assert power.total > 0

    def test_perfect_modes_speed_things_up(self, small_trace, config):
        real, _ = run_execution_driven(small_trace, config)
        perfect, _ = run_execution_driven(small_trace, config,
                                          perfect_caches=True,
                                          perfect_branch_prediction=True)
        assert perfect.ipc >= real.ipc

    def test_warmup_changes_outcome(self, small_program, config):
        from repro.frontend.warming import run_program_with_warmup

        warm, trace = run_program_with_warmup(small_program, 3000, 2000)
        cold, _ = run_execution_driven(trace, config)
        warmed, _ = run_execution_driven(trace, config, warmup_trace=warm)
        assert warmed.ipc >= cold.ipc


class TestRunStatisticalSimulation:
    def test_report_contents(self, small_trace, config):
        report = run_statistical_simulation(small_trace, config,
                                            reduction_factor=4, seed=0)
        assert report.profile.order == 1
        assert len(report.synthetic_trace) > 0
        assert report.ipc > 0
        assert report.epc > 0
        assert report.edp == pytest.approx(
            report.epc / report.ipc ** 2)

    def test_profile_reuse(self, small_trace, config):
        profile = profile_trace(small_trace, config, order=1)
        a = run_statistical_simulation(small_trace, config,
                                       profile=profile,
                                       reduction_factor=4, seed=5)
        b = run_statistical_simulation(small_trace, config,
                                       profile=profile,
                                       reduction_factor=4, seed=5)
        assert a.ipc == b.ipc  # fully deterministic given profile+seed
        assert a.profile is profile

    def test_r1_accuracy_on_regular_workload(self, tiny_trace, config):
        # At reduction factor 1 the synthetic trace mirrors the
        # original statistically; for a highly regular loop the IPC
        # prediction lands close to the reference.
        reference, _ = run_execution_driven(tiny_trace, config)
        report = run_statistical_simulation(tiny_trace, config,
                                            reduction_factor=1, seed=0)
        assert absolute_error(report.ipc, reference.ipc) < 0.15

    def test_order_zero_still_runs(self, small_trace, config):
        report = run_statistical_simulation(small_trace, config, order=0,
                                            reduction_factor=4, seed=0)
        assert report.profile.order == 0
        assert report.ipc > 0


class TestSimulateSyntheticTrace:
    def test_runs_generated_trace(self, small_trace, config):
        from repro.core.synthesis import generate_synthetic_trace

        profile = profile_trace(small_trace, config, order=1)
        synthetic = generate_synthetic_trace(profile, 4, seed=0)
        result, power = simulate_synthetic_trace(synthetic, config)
        assert result.instructions == len(synthetic)
        assert power.total > 0
