"""Tests for the extended CLI commands (trace, analyze, validate,
report)."""

import pytest

import repro.cli as cli
import repro.experiments.common as common
from repro.cli import main
from repro.experiments.common import ExperimentScale

TINY = ExperimentScale(warmup=2000, reference=4000, reduction_factor=4.0,
                       seeds=(0,), benchmarks=("gzip", "twolf"))


@pytest.fixture
def saved_profile(tmp_path):
    path = tmp_path / "p.json"
    assert main(["profile", "gzip", "-o", str(path), "--instructions",
                 "4000", "--warmup", "2000"]) == 0
    return path


class TestTraceCommand:
    def test_record_and_reload(self, tmp_path, capsys):
        path = tmp_path / "t.bin"
        assert main(["trace", "gzip", "-o", str(path),
                     "--instructions", "3000"]) == 0
        from repro.frontend.tracefile import load_trace

        assert len(load_trace(path)) == 3000


class TestAnalyzeCommand:
    def test_analyze(self, saved_profile, capsys):
        assert main(["analyze", str(saved_profile), "-R", "4"]) == 0
        output = capsys.readouterr().out
        assert "transition entropy" in output
        assert "hottest contexts" in output
        assert "reduced at R=4" in output


class TestValidateCommand:
    def test_validate(self, saved_profile, capsys):
        assert main(["validate", str(saved_profile), "-R", "2"]) == 0
        output = capsys.readouterr().out
        assert "load_fraction" in output
        assert "drift" in output


class TestReportCommand:
    def test_report_subset(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(common, "QUICK_SCALE", TINY)
        monkeypatch.setattr(cli, "EXPERIMENTS",
                            {"table3": "table3_sfg_size",
                             "table1": "table1_baseline"})
        path = tmp_path / "report.md"
        assert main(["report", "-o", str(path), "--scale", "quick"]) == 0
        text = path.read_text()
        assert "# repro experiment report" in text
        assert "## table1" in text
        assert "## table3" in text
        assert "benchmark" in text
