"""Service daemon: end-to-end over a real Unix socket.

In-process tests drive a Daemon inside ``asyncio.run`` and talk to it
with the blocking :class:`ServiceClient` via ``asyncio.to_thread``;
the crash-recovery tests run ``repro serve`` as a real subprocess and
``kill -9`` it.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import JobRejectedError, ServiceError
from repro.faults import ChaosPlan
from repro.service import Daemon, ServiceClient, ServiceConfig
from repro.service.jobs import JobStore

SRC = Path(__file__).resolve().parent.parent / "src"


def make_config(tmp_path, **overrides):
    defaults = dict(state_dir=tmp_path / "state", workers=1,
                    heartbeat_interval=0.05, drain_deadline=0.3,
                    lease_ttl=5.0, checkpoint_every=1000)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run_scenario(config, scenario, **daemon_kwargs):
    """Start a daemon, run ``await scenario(daemon, client)``, drain."""
    daemon_kwargs.setdefault("fault_plan", None)

    async def main():
        daemon = Daemon(config, **daemon_kwargs)
        await daemon.start()
        client = ServiceClient(config.socket_path, client_id="test",
                               backoff_base=0.01, backoff_cap=0.1)
        try:
            return await scenario(daemon, client)
        finally:
            daemon.request_stop("test")
            await daemon.shutdown()

    return asyncio.run(main())


def call(fn, *args, **kwargs):
    """Run a blocking client call off the event loop."""
    return asyncio.to_thread(fn, *args, **kwargs)


SLEEP = {"kind": "sleep", "seconds": 0.05}


class TestLifecycle:
    def test_submit_wait_done(self, tmp_path):
        async def scenario(daemon, client):
            response = await call(client.submit, SLEEP)
            assert response["created"]
            job_id = response["job"]["job_id"]
            final = await call(client.wait, job_id, 10.0)
            assert final["state"] == "done"
            listing = await call(client.jobs)
            assert [j["state"] for j in listing] == ["done"]
            status = await call(client.status)
            assert status["counts"]["done"] == 1
            return daemon.store.get(job_id)

        job = run_scenario(make_config(tmp_path), scenario)
        assert job.result["slept"] == 0.05

    def test_unknown_kind_fails_cleanly(self, tmp_path):
        async def scenario(daemon, client):
            response = await call(client.submit, {"kind": "nonsense"})
            final = await call(client.wait,
                               response["job"]["job_id"], 10.0)
            assert final["state"] == "failed"
            assert "unknown job kind" in final["error"]

        run_scenario(make_config(tmp_path), scenario)

    def test_resubmit_dedups_in_flight(self, tmp_path):
        async def scenario(daemon, client):
            long = {"kind": "sleep", "seconds": 3.0}
            first = await call(client.submit, long)
            second = await call(client.submit, long)
            assert first["job"]["job_id"] == second["job"]["job_id"]
            assert first["created"] and not second["created"]
            assert len(daemon.store.jobs) == 1

        run_scenario(make_config(tmp_path), scenario)

    def test_cancel_queued_job(self, tmp_path):
        async def scenario(daemon, client):
            blocker = await call(client.submit,
                                 {"kind": "sleep", "seconds": 3.0})
            queued = await call(client.submit,
                                {"kind": "sleep", "seconds": 0.01,
                                 "tag": "victim"})
            response = await call(client.cancel,
                                  queued["job"]["job_id"])
            assert response["disposition"] == "cancelled"
            final = await call(client.wait,
                               queued["job"]["job_id"], 5.0)
            assert final["state"] == "cancelled"

        run_scenario(make_config(tmp_path, workers=1), scenario)

    def test_two_daemons_one_state_dir_refused(self, tmp_path):
        config = make_config(tmp_path)

        async def scenario(daemon, client):
            rival = Daemon(make_config(tmp_path), fault_plan=None)
            with pytest.raises(ServiceError, match="already serves"):
                await rival.start()

        run_scenario(config, scenario)


class TestAdmissionControl:
    def test_queue_full_rejects_with_retry_after(self, tmp_path):
        config = make_config(tmp_path, workers=1, max_queue_depth=1)

        async def scenario(daemon, client):
            await call(client.submit, {"kind": "sleep", "seconds": 3.0})
            await asyncio.sleep(0.2)  # let the worker claim it
            await call(client.submit, {"kind": "sleep", "seconds": 1.0,
                                       "tag": "queued"})
            strict = ServiceClient(config.socket_path,
                                   client_id="other", max_attempts=1)
            with pytest.raises(JobRejectedError) as info:
                await call(strict.submit,
                           {"kind": "sleep", "seconds": 1.0,
                            "tag": "rejected"})
            assert info.value.reason == "queue-full"
            assert info.value.retry_after > 0

        run_scenario(config, scenario)

    def test_client_cap_is_per_client(self, tmp_path):
        config = make_config(tmp_path, workers=1,
                             max_client_inflight=1, max_queue_depth=32)

        async def scenario(daemon, client):
            await call(client.submit, {"kind": "sleep", "seconds": 3.0})
            capped = ServiceClient(config.socket_path,
                                   client_id="test", max_attempts=1)
            with pytest.raises(JobRejectedError) as info:
                await call(capped.submit,
                           {"kind": "sleep", "seconds": 1.0, "tag": "x"})
            assert info.value.reason == "client-cap"
            other = ServiceClient(config.socket_path,
                                  client_id="someone-else",
                                  max_attempts=1)
            response = await call(other.submit,
                                  {"kind": "sleep", "seconds": 1.0,
                                   "tag": "x"})
            assert response["created"]

        run_scenario(config, scenario)

    def test_dedup_resubmission_bypasses_caps(self, tmp_path):
        config = make_config(tmp_path, workers=1,
                             max_client_inflight=1)

        async def scenario(daemon, client):
            long = {"kind": "sleep", "seconds": 3.0}
            await call(client.submit, long)
            capped = ServiceClient(config.socket_path,
                                   client_id="test", max_attempts=1)
            response = await call(capped.submit, long)  # same content
            assert not response["created"]

        run_scenario(config, scenario)

    def test_draining_rejects_submissions(self, tmp_path):
        config = make_config(tmp_path)

        async def scenario(daemon, client):
            daemon.request_stop("test-drain")
            strict = ServiceClient(config.socket_path,
                                   client_id="late", max_attempts=1)
            with pytest.raises(JobRejectedError) as info:
                await call(strict.submit, SLEEP)
            assert info.value.reason == "draining"

        run_scenario(config, scenario)


class TestClientBackoff:
    def test_backoff_honors_retry_after(self):
        delays = []
        client = ServiceClient("/nonexistent.sock", max_attempts=4,
                               backoff_base=0.01, backoff_cap=10.0,
                               sleep=delays.append)
        rejection = {"ok": False, "reason": "queue-full",
                     "error": "full", "retry_after": 0.7}
        client._roundtrip = lambda message: rejection
        with pytest.raises(JobRejectedError) as info:
            client.request({"cmd": "submit", "payload": SLEEP})
        assert info.value.reason == "queue-full"
        assert len(delays) == 3  # retried between the 4 attempts
        assert all(delay >= 0.7 for delay in delays)

    def test_backoff_is_exponential_and_jittered(self):
        import random

        delays = []
        client = ServiceClient("/nonexistent.sock", max_attempts=5,
                               backoff_base=1.0, backoff_cap=100.0,
                               rng=random.Random(7),
                               sleep=delays.append)

        def dropped(message):
            raise ConnectionError("gone")

        client._roundtrip = dropped
        with pytest.raises(ServiceError, match="unreachable"):
            client.request({"cmd": "ping"})
        assert len(delays) == 4
        # Each ceiling doubles; jitter keeps every delay in
        # [ceiling/2, ceiling].
        for attempt, delay in enumerate(delays):
            ceiling = 1.0 * (2 ** attempt)
            assert ceiling / 2 <= delay <= ceiling

    def test_bad_request_is_not_retried(self, tmp_path):
        config = make_config(tmp_path)

        async def scenario(daemon, client):
            attempts = []
            counting = ServiceClient(config.socket_path,
                                     client_id="bad", max_attempts=5,
                                     sleep=attempts.append)
            with pytest.raises(JobRejectedError) as info:
                await call(counting.submit, {"no": "kind"})
            assert info.value.reason == "bad-request"
            assert attempts == []  # failed fast, no backoff

        run_scenario(config, scenario)


class TestSubmitDropChaos:
    def test_dropped_ack_retry_cannot_double_enqueue(self, tmp_path):
        plan = ChaosPlan.parse("seed=1;submit-drop")
        config = make_config(tmp_path)

        async def scenario(daemon, client):
            # rate=1: every *creating* submit's ack is dropped.  The
            # client retries; the retry dedups onto the existing job,
            # which no longer counts as created, so its ack goes out.
            response = await call(client.submit, SLEEP)
            assert not response["created"]  # the retry's view
            assert len(daemon.store.jobs) == 1
            final = await call(client.wait,
                               response["job"]["job_id"], 10.0)
            assert final["state"] == "done"

        run_scenario(config, scenario, fault_plan=plan)


class TestTail:
    def test_tail_streams_job_lifecycle(self, tmp_path):
        config = make_config(tmp_path)

        async def scenario(daemon, client):
            response = await call(client.submit,
                                  {"kind": "sleep", "seconds": 0.3})
            job_id = response["job"]["job_id"]
            tailer = ServiceClient(config.socket_path)
            events = await call(lambda: list(tailer.tail(job_id)))
            names = [event.get("event") for event in events]
            assert "service.job_done" in names
            assert all(event.get("job") == job_id for event in events
                       if "job" in event)

        run_scenario(config, scenario)


class TestDrain:
    def test_drain_requeues_past_deadline(self, tmp_path):
        config = make_config(tmp_path, drain_deadline=0.2)

        async def scenario(daemon, client):
            response = await call(client.submit,
                                  {"kind": "sleep", "seconds": 30.0})
            await asyncio.sleep(0.2)  # worker picks it up
            job_id = response["job"]["job_id"]
            assert daemon.store.get(job_id).state == "running"
            return job_id

        job_id = run_scenario(config, scenario)
        # After shutdown: the running job went back to the queue and
        # the final checkpoint recorded that durably.
        store = JobStore(config.state_dir)
        report = store.recover()
        assert store.get(job_id).state == "queued"
        assert store.get(job_id).requeues == 1
        assert report.dropped_lines == 0


def spawn_daemon(state_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir),
         "--heartbeat", "0.1", "--lease-ttl", "0.5",
         "--drain-deadline", "2", *extra],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def wait_for_socket(path, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            return
        time.sleep(0.05)
    raise AssertionError(f"daemon socket {path} never appeared")


class TestKillDashNine:
    def test_kill9_restart_completes_everything(self, tmp_path):
        state = tmp_path / "state"
        daemon = spawn_daemon(state)
        try:
            wait_for_socket(state / "service.sock")
            client = ServiceClient(state / "service.sock",
                                   client_id="kill9")
            victim = client.submit({"kind": "sleep", "seconds": 8.0})
            quick = client.submit({"kind": "sleep", "seconds": 0.1,
                                   "tag": "quick"})
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                jobs = {j["job_id"]: j for j in client.jobs()}
                if jobs[victim["job"]["job_id"]]["state"] == "running":
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("victim job never started")
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(timeout=10)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)

        time.sleep(0.6)  # let the lease go stale
        second = spawn_daemon(state, "--workers", "2")
        try:
            wait_for_socket(state / "service.sock")
            client = ServiceClient(state / "service.sock",
                                   client_id="kill9")
            # The interrupted 8s job was requeued; shrink it by
            # resubmitting-after-failure is not needed — just wait for
            # the quick one and assert the victim is queued/running
            # again with a recorded requeue.
            final = client.wait(quick["job"]["job_id"], timeout=30)
            assert final["state"] == "done"
            victim_state = {
                j["job_id"]: j for j in client.jobs()
            }[victim["job"]["job_id"]]
            assert victim_state["requeues"] >= 1
            assert victim_state["state"] in ("queued", "running")
            # Idempotent resubmission of the finished job is a no-op.
            again = client.submit({"kind": "sleep", "seconds": 0.1,
                                   "tag": "quick"})
            assert not again["created"]
            assert again["job"]["state"] == "done"
        finally:
            second.send_signal(signal.SIGTERM)
            try:
                second.wait(timeout=15)
            except subprocess.TimeoutExpired:
                second.kill()
                second.wait(timeout=10)
        assert second.returncode == 0


class TestMetricsVerb:
    def test_metrics_aggregates_and_renders(self, tmp_path):
        from repro.obs.exposition import validate_openmetrics

        config = make_config(tmp_path)

        async def scenario(daemon, client):
            response = await call(client.submit, SLEEP)
            await call(client.wait, response["job"]["job_id"], 10.0)
            return await call(client.metrics)

        response = run_scenario(make_config(tmp_path), scenario)
        assert response["ok"]
        assert response["counts"]["done"] == 1
        assert response["queue_depth"] == 0
        assert response["workers"] == 1
        snapshot = response["metrics"]
        # The registry is process-global across in-process daemon
        # tests, so counts are lower bounds.
        assert snapshot["counters"]["service.jobs_done"] >= 1
        assert "job" in snapshot["phases"]
        assert snapshot["phases"]["job"]["p50"] is not None
        text = response["openmetrics"]
        assert validate_openmetrics(text) == []
        assert "repro_service_jobs_done_total" in text

    def test_metrics_on_idle_daemon(self, tmp_path):
        async def scenario(daemon, client):
            return await call(client.metrics)

        response = run_scenario(make_config(tmp_path), scenario)
        assert response["ok"]
        assert response["counts"]["done"] == 0
        assert not response["draining"]


class TestTraceStitching:
    def test_job_span_parents_under_submitted_trace(self, tmp_path):
        from repro.obs.traceview import load_spans

        config = make_config(tmp_path)
        trace_id, parent_id = "ab" * 16, "cd" * 8

        async def scenario(daemon, client):
            message = {"cmd": "submit", "payload": dict(SLEEP),
                       "client": "traced",
                       "trace": {"trace": trace_id,
                                 "parent": parent_id}}
            response = await call(client.request, message)
            job_id = response["job"]["job_id"]
            await call(client.wait, job_id, 10.0)
            # Same payload without the trace dedups onto the same
            # job: the context rides outside the idempotency hash.
            again = await call(client.submit, dict(SLEEP))
            assert not again["created"]
            assert again["job"]["job_id"] == job_id
            return job_id

        job_id = run_scenario(config, scenario)
        spans = load_spans(config.state_dir / "telemetry")
        job_spans = [span for span in spans
                     if span["phase"] == "job"
                     and span["fields"].get("job") == job_id]
        assert job_spans, "daemon must record the job span"
        assert job_spans[0]["trace"] == trace_id
        assert job_spans[0]["parent"] == parent_id

    def test_untraced_submission_still_spans(self, tmp_path):
        from repro.obs.traceview import load_spans

        config = make_config(tmp_path)

        async def scenario(daemon, client):
            response = await call(client.submit, dict(SLEEP))
            job_id = response["job"]["job_id"]
            await call(client.wait, job_id, 10.0)
            return job_id

        job_id = run_scenario(config, scenario)
        spans = load_spans(config.state_dir / "telemetry")
        job_spans = [span for span in spans
                     if span["phase"] == "job"
                     and span["fields"].get("job") == job_id]
        assert job_spans  # daemon's own context roots the span

    def test_drain_dumps_flight_recorder(self, tmp_path):
        config = make_config(tmp_path)

        async def scenario(daemon, client):
            await call(client.ping)
            daemon.request_stop("SIGTERM")

        run_scenario(config, scenario)
        dumps = list((config.state_dir / "telemetry")
                     .glob("flightrec-*.jsonl"))
        assert dumps
        header = json.loads(dumps[0].read_text().splitlines()[0])
        assert header["reason"] == "drain-sigterm"


class TestTailReconnect:
    def make_client(self, streams, sleeps):
        client = ServiceClient("/nonexistent.sock", max_attempts=3,
                               backoff_base=0.01, backoff_cap=0.05,
                               sleep=sleeps.append)
        iterator = iter(streams)

        def fake_stream(job_id):
            outcome = next(iterator)
            yield from outcome.get("events", [])
            if outcome.get("drop"):
                raise ConnectionError("dropped")
            yield {"tail_end": True}

        client._tail_stream = fake_stream
        return client

    def counter_value(self):
        from repro.obs import get_registry

        return get_registry().snapshot()["counters"].get(
            "tail.reconnects", 0)

    def test_drop_reconnects_and_resumes(self):
        sleeps = []
        before = self.counter_value()
        client = self.make_client([
            {"events": [{"event": "service.job_started", "job": "j"}],
             "drop": True},
            {"events": [{"event": "service.job_done", "job": "j"}]},
        ], sleeps)
        events = list(client.tail("j"))
        assert [event["event"] for event in events] \
            == ["service.job_started", "service.job_done"]
        assert len(sleeps) == 1  # one backoff for one reconnect
        assert self.counter_value() == before + 1

    def test_attempt_budget_resets_on_received_events(self):
        sleeps = []
        streams = [{"events": [{"event": "service.job_started"}],
                    "drop": True}] * 6 \
            + [{"events": [{"event": "service.job_done"}]}]
        client = self.make_client(streams, sleeps)
        events = list(client.tail("j"))
        # 6 drops each delivered an event first, so the budget reset
        # every time and the tail survived far past max_attempts=3.
        assert len(events) == 7
        assert len(sleeps) == 6

    def test_persistent_outage_raises_after_budget(self):
        sleeps = []
        client = self.make_client([{"drop": True}] * 10, sleeps)
        with pytest.raises(ServiceError, match="stayed unreachable"):
            list(client.tail("j"))
        assert len(sleeps) == 2  # max_attempts=3 -> 2 backoffs

    def test_reconnect_false_ends_quietly(self):
        sleeps = []
        client = self.make_client([
            {"events": [{"event": "service.job_started"}],
             "drop": True}], sleeps)
        events = list(client.tail("j", reconnect=False))
        assert len(events) == 1
        assert sleeps == []
