"""Exact-equivalence guard for the event-driven pipeline.

The optimized :class:`repro.cpu.pipeline.SuperscalarPipeline` (idle-cycle
fast-forward, pooled ``_Inflight`` records, ring-buffer RUU/IFQ) must
produce a *field-for-field identical* :class:`SimulationResult` to the
frozen cycle-by-cycle loop in :mod:`repro.cpu.reference` — same cycle
count, same occupancy averages, same activity counts — for every
configuration and source type.  Any intentional behaviour change must
update both implementations together.
"""

from dataclasses import replace

import pytest

from repro.config import baseline_config
from repro.core.profiler import profile_trace
from repro.core.synthesis import generate_synthetic_trace
from repro.cpu.pipeline import SuperscalarPipeline
from repro.cpu.reference import ReferencePipeline
from repro.cpu.source import ExecutionDrivenSource, PreannotatedSource
from repro.isa.iclass import IClass
from repro.branch.unit import BranchOutcome
from repro.cpu.source import FetchSlot


def _assert_identical(new, old):
    assert new.cycles == old.cycles
    assert new.instructions == old.instructions
    assert new.avg_ruu_occupancy == old.avg_ruu_occupancy
    assert new.avg_lsq_occupancy == old.avg_lsq_occupancy
    assert new.avg_ifq_occupancy == old.avg_ifq_occupancy
    assert new.activity == old.activity
    assert new.branches == old.branches
    assert new.taken_branches == old.taken_branches
    assert new.fetch_redirections == old.fetch_redirections
    assert new.branch_mispredictions == old.branch_mispredictions
    assert new.squashed_instructions == old.squashed_instructions


#: Configurations chosen to force every structurally distinct pipeline
#: path: the baseline OOO core, in-order issue, the anti-dependency /
#: conservative-load extensions, a tiny window (constant squash/commit
#: pressure on the ring buffers), and a starved FU mix (issue deferral).
CONFIG_VARIANTS = {
    "baseline": {},
    "in_order": {"in_order_issue": True},
    "conservative": {"conservative_loads": True,
                     "enforce_anti_dependencies": True},
    "tiny_window": {"ruu_size": 4, "lsq_size": 2, "ifq_size": 2,
                    "fetch_speed": 1},
    "fu_starved": {"int_alus": 1, "load_store_units": 1, "fp_adders": 1,
                   "int_mult_divs": 1, "fp_mult_divs": 1},
    "wide": {"decode_width": 8, "issue_width": 8, "commit_width": 8,
             "ruu_size": 128},
}


def _config(name):
    overrides = CONFIG_VARIANTS[name]
    config = baseline_config()
    return replace(config, **overrides) if overrides else config


@pytest.fixture(scope="module")
def synthetic_trace(request):
    # Build one synthetic trace from the shared small workload: it
    # carries dependencies, miss flags, taken branches, mispredictions
    # and redirections, so it exercises the full preannotated path.
    from tests.conftest import make_tiny_program
    from repro.frontend.functional import run_program
    from repro.workloads.generator import WorkloadConfig, generate_program

    program = generate_program(WorkloadConfig(
        name="equiv", seed=11, n_blocks=10, mean_block_size=5,
        working_set_kb=64, n_memory_streams=3))
    trace = run_program(program, n_instructions=4000)
    profile = profile_trace(trace, baseline_config(), order=1,
                            branch_mode="delayed")
    return profile, generate_synthetic_trace(profile, 4.0, seed=3)


@pytest.mark.parametrize("variant", sorted(CONFIG_VARIANTS))
def test_synthetic_source_identical(synthetic_trace, variant):
    _profile, synthetic = synthetic_trace
    config = _config(variant)
    slots = synthetic.to_fetch_slots(config)
    new = SuperscalarPipeline(config, PreannotatedSource(list(slots))).run()
    old = ReferencePipeline(config, PreannotatedSource(list(slots))).run()
    _assert_identical(new, old)


@pytest.mark.parametrize("variant", sorted(CONFIG_VARIANTS))
def test_execution_driven_source_identical(small_trace, variant):
    config = _config(variant)
    new = SuperscalarPipeline(
        config, ExecutionDrivenSource(small_trace, config)).run()
    old = ReferencePipeline(
        config, ExecutionDrivenSource(small_trace, config)).run()
    _assert_identical(new, old)


def _branch(outcome=BranchOutcome.CORRECT, taken=False):
    return FetchSlot(IClass.INT_COND_BRANCH, exec_latency=1,
                     outcome=outcome, taken=taken)


def _hand_built_streams():
    alu = lambda **kw: FetchSlot(IClass.INT_ALU, exec_latency=1, **kw)
    load = lambda **kw: FetchSlot(IClass.LOAD, exec_latency=3, **kw)
    store = lambda **kw: FetchSlot(IClass.STORE, exec_latency=1, **kw)
    yield "mispredict_burst", [
        slot for _ in range(20)
        for slot in (alu(), _branch(BranchOutcome.MISPREDICTION), alu())]
    yield "redirect_chain", [
        slot for _ in range(20)
        for slot in (alu(), _branch(BranchOutcome.FETCH_REDIRECTION,
                                    taken=True))]
    yield "fetch_stalls", [alu(fetch_stall=7) for _ in range(30)]
    yield "long_latency_chain", [
        load(dep_distances=(1,)) for _ in range(40)]
    yield "store_load_mix", [
        slot for _ in range(15)
        for slot in (store(), load(dep_distances=(1,)), alu())]
    yield "idle_gaps", [
        alu(fetch_stall=50), load(dep_distances=(1,)),
        alu(dep_distances=(1,)), _branch(taken=True),
        alu(fetch_stall=30), alu()]


@pytest.mark.parametrize(
    "name,slots", list(_hand_built_streams()),
    ids=[name for name, _ in _hand_built_streams()])
@pytest.mark.parametrize("variant",
                         ["baseline", "in_order", "tiny_window"])
def test_hand_built_streams_identical(name, slots, variant):
    config = _config(variant)
    new = SuperscalarPipeline(config, PreannotatedSource(list(slots))).run()
    old = ReferencePipeline(config, PreannotatedSource(list(slots))).run()
    _assert_identical(new, old)


def test_max_cycles_guard_matches():
    config = _config("baseline")
    slots = [FetchSlot(IClass.INT_ALU, exec_latency=1, fetch_stall=10_000)]
    with pytest.raises(RuntimeError) as new_err:
        SuperscalarPipeline(config, PreannotatedSource(list(slots))).run(
            max_cycles=500)
    with pytest.raises(RuntimeError) as old_err:
        ReferencePipeline(config, PreannotatedSource(list(slots))).run(
            max_cycles=500)
    assert str(new_err.value) == str(old_err.value)
