"""Tests for the reduced statistical flow graph (paper section 2.2)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.profiler import profile_trace
from repro.core.reduction import reduce_flow_graph


class TestReduction:
    def test_floor_division(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        reduced = reduce_flow_graph(profile.sfg, 10)
        for context, budget in reduced.occurrences.items():
            original = profile.sfg.contexts[context].occurrences
            assert budget == original // 10

    def test_zero_budget_nodes_dropped(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        reduced = reduce_flow_graph(profile.sfg, 10)
        for context, budget in reduced.occurrences.items():
            assert budget > 0
        dropped = set(profile.sfg.contexts) - set(reduced.occurrences)
        for context in dropped:
            assert profile.sfg.contexts[context].occurrences < 10

    def test_factor_one_keeps_everything(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        reduced = reduce_flow_graph(profile.sfg, 1)
        assert reduced.num_nodes == profile.num_nodes
        assert reduced.total_blocks == profile.sfg.total_block_executions

    def test_huge_factor_empties_graph(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        reduced = reduce_flow_graph(profile.sfg, 10**9)
        assert reduced.num_nodes == 0
        assert reduced.total_blocks == 0

    def test_rejects_factor_below_one(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        with pytest.raises(ValueError):
            reduce_flow_graph(profile.sfg, 0.5)

    # The fixtures are only read, so sharing them across examples is
    # safe; the profile is rebuilt per example anyway.
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(factor=st.floats(min_value=1.0, max_value=1000.0))
    def test_total_blocks_scale(self, factor, small_trace, config):
        profile = profile_trace(small_trace, config, order=1,
                                branch_mode="perfect",
                                perfect_caches=True)
        reduced = reduce_flow_graph(profile.sfg, factor)
        total = profile.sfg.total_block_executions
        # Flooring loses at most one unit of budget per node.
        assert reduced.total_blocks <= total / factor + 1
        assert reduced.total_blocks >= total / factor \
            - profile.num_nodes
