"""``repro top``: frame rendering, rates and the poll loop."""

import pytest

from repro.errors import ServiceError
from repro.service.top import (
    cache_hit_rate,
    compute_rates,
    format_frame,
    run_top,
)


def make_response(**overrides):
    response = {
        "ok": True,
        "pid": 4321,
        "workers": 2,
        "draining": False,
        "queue_depth": 3,
        "active": ["j1", "j2"],
        "counts": {"done": 5, "failed": 1, "cancelled": 0},
        "metrics": {
            "processes": 3,
            "counters": {"dse.evaluated": 40, "dse.cache_hits": 30,
                         "dse.cache_misses": 10},
            "phases": {
                "evaluate": {"count": 40, "p50": 0.05, "p95": 0.2,
                             "p99": 0.4, "total": 2.5},
                "job": {"count": 5, "p50": 1.2, "p95": 2.0,
                        "p99": None, "total": 6.0},
            },
        },
    }
    response.update(overrides)
    return response


class TestComputations:
    def test_rates_are_per_second_deltas(self):
        previous = {"counters": {"dse.evaluated": 10}}
        current = {"counters": {"dse.evaluated": 40}}
        rates = compute_rates(previous, current, 2.0)
        assert rates["dse.evaluated"] == pytest.approx(15.0)

    def test_rates_empty_without_baseline(self):
        assert compute_rates(None, {"counters": {}}, 2.0) == {}
        assert compute_rates({}, {"counters": {}}, 0.0) == {}

    def test_counter_reset_yields_no_rate(self):
        previous = {"counters": {"dse.evaluated": 50}}
        current = {"counters": {"dse.evaluated": 10}}
        assert "dse.evaluated" not in compute_rates(
            previous, current, 1.0)

    def test_cache_hit_rate(self):
        assert cache_hit_rate(make_response()["metrics"]) \
            == pytest.approx(0.75)
        assert cache_hit_rate({"counters": {}}) is None


class TestFrame:
    def test_frame_headline(self):
        frame = format_frame(make_response())
        assert "daemon pid 4321" in frame
        assert "serving" in frame
        assert "2 worker(s)" in frame
        assert "3 process(es) aggregated" in frame

    def test_frame_jobs_line(self):
        frame = format_frame(make_response())
        assert "queued=3" in frame
        assert "running=2" in frame
        assert "done=5" in frame and "failed=1" in frame

    def test_frame_sweep_line(self):
        frame = format_frame(make_response(),
                             rates={"dse.evaluated": 12.5})
        assert "points/sec=12.50" in frame
        assert "cache-hit-rate=75.0%" in frame
        assert "evaluated=40" in frame

    def test_frame_phase_table(self):
        frame = format_frame(make_response())
        assert "phase" in frame and "p95" in frame
        assert "evaluate" in frame
        assert "50.0ms" in frame   # evaluate p50
        assert "1.20s" in frame    # job p50
        assert "-" in frame        # job p99 is absent

    def test_draining_state_shown(self):
        frame = format_frame(make_response(draining=True))
        assert "draining" in frame


class FakeClient:
    def __init__(self, responses):
        self.responses = list(responses)

    def metrics(self):
        outcome = self.responses.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestLoop:
    def test_once_prints_single_frame(self):
        frames = []
        rc = run_top(FakeClient([make_response()]), once=True,
                     emit=frames.append)
        assert rc == 0
        assert len(frames) == 1
        assert "daemon pid 4321" in frames[0]
        assert "\x1b" not in frames[0]  # no ANSI clear in once mode

    def test_loop_computes_rates_between_frames(self):
        frames = []
        second = make_response()
        second["metrics"]["counters"]["dse.evaluated"] = 60
        clock = iter([0.0, 2.0])

        def sleep(_interval):
            if len(frames) >= 2:
                raise KeyboardInterrupt

        rc = run_top(FakeClient([make_response(), second,
                                 make_response()]),
                     interval=0.01, emit=frames.append,
                     clock=lambda: next(clock), sleep=sleep)
        assert rc == 0
        assert len(frames) == 2
        assert "points/sec=10.00" in frames[1]  # (60-40)/2s
        assert frames[1].startswith("\x1b[2J\x1b[H")

    def test_unreachable_daemon_exits_nonzero(self):
        frames = []
        rc = run_top(FakeClient([ServiceError("gone")]), once=True,
                     emit=frames.append)
        assert rc == 1
        assert "gone" in frames[0]
