"""Suite-level characterization regression tests.

These pin the qualitative personality of each SPEC-named workload so
that future changes to the generator or behaviours cannot silently
break the properties the experiments rely on (branch predictability
ordering, memory pressure ordering, code-size ordering).  They use
short windows to stay fast; the full-scale picture lives in
EXPERIMENTS.md.
"""

import pytest

from repro.config import baseline_config
from repro.core.framework import run_execution_driven
from repro.frontend.warming import run_program_with_warmup
from repro.workloads.spec import benchmark_names, build_benchmark

_WINDOW = 12_000
_WARMUP = 12_000


@pytest.fixture(scope="module")
def characterization():
    config = baseline_config()
    results = {}
    for name in benchmark_names():
        warm, trace = run_program_with_warmup(build_benchmark(name),
                                              _WARMUP, _WINDOW)
        result, power = run_execution_driven(trace, config,
                                             warmup_trace=warm)
        results[name] = (result, power)
    return results


class TestSuiteCharacterization:
    def test_all_benchmarks_complete(self, characterization):
        for name, (result, _) in characterization.items():
            assert result.instructions == _WINDOW, name

    def test_ipc_range_sane(self, characterization):
        for name, (result, _) in characterization.items():
            assert 0.05 < result.ipc < 8.0, (name, result.ipc)

    def test_ipc_spread(self, characterization):
        ipcs = [r.ipc for r, _ in characterization.values()]
        assert max(ipcs) / min(ipcs) > 2.0

    def test_compressors_fastest(self, characterization):
        ipc = {name: result.ipc
               for name, (result, _) in characterization.items()}
        slow_group = min(ipc["crafty"], ipc["twolf"], ipc["parser"])
        assert ipc["gzip"] > slow_group
        assert ipc["bzip2"] > slow_group

    def test_branchy_benchmarks_mispredict_more(self, characterization):
        mpki = {name: result.mispredictions_per_kilo_instruction
                for name, (result, _) in characterization.items()}
        # Interpreter/ray-tracer style codes sit above the streaming
        # compressors.
        assert mpki["perlbmk"] > mpki["gzip"]
        assert mpki["eon"] > mpki["gzip"]

    def test_power_in_plausible_band(self, characterization):
        for name, (_, power) in characterization.items():
            assert 10.0 < power.total < 80.0, (name, power.total)

    def test_faster_benchmarks_burn_more_power(self, characterization):
        # cc3 gating ties EPC to utilization: the fastest workload must
        # consume more than the slowest.
        by_ipc = sorted(characterization.values(), key=lambda rp: rp[0].ipc)
        assert by_ipc[-1][1].total > by_ipc[0][1].total

    def test_determinism_across_builds(self, characterization):
        # Rebuilding a benchmark and re-running gives bit-identical
        # results (the whole stack is seeded).
        config = baseline_config()
        warm, trace = run_program_with_warmup(build_benchmark("eon"),
                                              _WARMUP, _WINDOW)
        again, _ = run_execution_driven(trace, config, warmup_trace=warm)
        first, _ = characterization["eon"]
        assert again.cycles == first.cycles
        assert again.activity == first.activity
