"""Tests for single-pass multi-configuration profiling."""

import pytest

from repro.core.multiprofile import profile_trace_multi_cache
from repro.core.profiler import profile_trace
from repro.core.synthesis import generate_synthetic_trace


class TestEquivalence:
    def test_scale_one_matches_single_profile(self, small_trace, config):
        multi = profile_trace_multi_cache(small_trace, config,
                                          cache_scales=(1.0,), order=1)
        single = profile_trace(small_trace, config, order=1)
        a, b = multi[1.0].sfg, single.sfg
        assert set(a.contexts) == set(b.contexts)
        assert a.transitions == b.transitions
        for key in a.contexts:
            sa, sb = a.contexts[key], b.contexts[key]
            assert sa.occurrences == sb.occurrences
            assert sa.il1 == sb.il1
            assert sa.dl1 == sb.dl1
            assert sa.dep_hists == sb.dep_hists
            assert sa.waw_hists == sb.waw_hists
            assert sa.outcome_counts == sb.outcome_counts

    def test_each_scale_matches_its_own_pass(self, small_trace, config):
        scales = (0.25, 1.0)
        multi = profile_trace_multi_cache(small_trace, config,
                                          cache_scales=scales, order=1)
        for scale in scales:
            scaled_config = config.with_cache_scale(scale)
            single = profile_trace(small_trace, scaled_config, order=1)
            for key, stats in single.sfg.contexts.items():
                other = multi[scale].sfg.contexts[key]
                assert other.dl1 == stats.dl1
                assert other.il1 == stats.il1


class TestBehaviour:
    def test_smaller_caches_more_annotated_misses(self, small_trace,
                                                  config):
        multi = profile_trace_multi_cache(small_trace, config,
                                          cache_scales=(0.25, 4.0),
                                          order=1)

        def total_dl1(profile):
            return sum(sum(s.dl1) for s in profile.sfg.contexts.values())

        assert total_dl1(multi[0.25]) >= total_dl1(multi[4.0])

    def test_profiles_usable_for_synthesis(self, small_trace, config):
        multi = profile_trace_multi_cache(small_trace, config,
                                          cache_scales=(0.5, 2.0),
                                          order=1)
        for scale, profile in multi.items():
            synthetic = generate_synthetic_trace(profile, 4, seed=0)
            assert len(synthetic) > 0
            assert profile.config.dl1.size_bytes == \
                int(config.dl1.size_bytes * scale)

    def test_structure_shared_across_scales(self, small_trace, config):
        multi = profile_trace_multi_cache(small_trace, config,
                                          cache_scales=(0.25, 1.0, 4.0))
        keys = [set(p.sfg.contexts) for p in multi.values()]
        assert keys[0] == keys[1] == keys[2]

    def test_validation(self, small_trace, config):
        with pytest.raises(ValueError):
            profile_trace_multi_cache(small_trace, config,
                                      cache_scales=())
        with pytest.raises(ValueError):
            profile_trace_multi_cache(small_trace, config,
                                      cache_scales=(1.0,), order=-1)
        with pytest.raises(ValueError):
            profile_trace_multi_cache(small_trace, config,
                                      cache_scales=(1.0,),
                                      branch_mode="nope")
