"""Unit tests for the TLB."""

import pytest

from repro.config import TLBConfig
from repro.cache.tlb import TranslationLookasideBuffer


def _tlb(entries=8, assoc=4, page=4096):
    return TranslationLookasideBuffer(
        TLBConfig("test", entries, assoc, page_bytes=page))


class TestTLB:
    def test_cold_miss_then_hit(self):
        tlb = _tlb()
        assert tlb.access(0x1234) is False
        assert tlb.access(0x1FFF) is True  # same 4KB page

    def test_page_granularity(self):
        tlb = _tlb()
        tlb.access(0)
        assert tlb.access(4095) is True
        assert tlb.access(4096) is False

    def test_capacity_eviction(self):
        tlb = _tlb(entries=2, assoc=2)
        tlb.access(0 * 4096)
        tlb.access(1 * 4096)
        tlb.access(2 * 4096)
        # Fully-assoc-like single set of 2: page 0 evicted.
        assert tlb.access(0) is False

    def test_miss_rate(self):
        tlb = _tlb()
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_reset_statistics(self):
        tlb = _tlb()
        tlb.access(0)
        tlb.reset_statistics()
        assert tlb.accesses == 0 and tlb.misses == 0

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            _tlb(page=1000)
