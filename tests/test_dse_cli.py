"""The ``repro dse`` CLI command and the sec46/speedup rewiring."""

import json

import pytest

from repro.cli import main
from repro.experiments.common import ExperimentScale

TINY = ExperimentScale(warmup=2_000, reference=3_000,
                       reduction_factor=4.0, seeds=(0,),
                       benchmarks=("gzip",))


def write_sweep(tmp_path, n_points=2):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({
        "name": "cli-tiny", "mode": "grid",
        "parameters": {"ruu_size": [32, 64][:n_points], "width": [4]},
    }))
    return str(path)


class TestArgValidation:
    def test_resume_requires_cache_dir(self, capsys):
        assert main(["dse", "--resume"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["dse", "--benchmark", "quake3"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bad_seeds_rejected(self, capsys):
        assert main(["dse", "--seeds", "0,x"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["dse", "--jobs", "0"])

    def test_missing_sweep_file_errors_cleanly(self, capsys, tmp_path):
        assert main(["dse", "--sweep", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_with_cache_then_resume(self, capsys, tmp_path):
        sweep = write_sweep(tmp_path)
        cache = str(tmp_path / "cache")
        args = ["dse", "--sweep", sweep, "--benchmark", "gzip",
                "--seeds", "0", "-R", "4", "--cache-dir", cache,
                "--no-verify"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 evaluated / 0 cached" in first
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 evaluated / 2 cached" in second

    def test_verify_pass_reports_optimum(self, capsys, tmp_path):
        sweep = write_sweep(tmp_path)
        assert main(["dse", "--sweep", sweep, "--benchmark", "gzip",
                     "--seeds", "0", "-R", "4"]) == 0
        out = capsys.readouterr().out
        assert "SS optimum" in out
        assert "re-checked execution-driven" in out

    def test_bench_mode_writes_payload(self, capsys, tmp_path):
        sweep = write_sweep(tmp_path)
        bench = tmp_path / "BENCH_dse.json"
        assert main(["dse", "--sweep", sweep, "--benchmark", "gzip",
                     "--seeds", "0", "-R", "4", "--jobs", "2",
                     "--bench", str(bench)]) == 0
        payload = json.loads(bench.read_text())
        assert payload["metrics_identical"] is True
        assert payload["warm_rerun_skipped_fraction"] >= 0.9
        assert payload["grid_points"] == 2
        assert payload["jobs"] == 2
        assert payload["serial_seconds"] > 0
        assert payload["parallel_seconds"] > 0


class TestExperimentRewiring:
    def test_sec46_supports_jobs_and_cache(self, tmp_path):
        from repro.experiments import sec46_design_space

        cache = str(tmp_path / "cache")
        kwargs = dict(scale=TINY, ruu_sizes=(16, 64), lsq_sizes=(8,),
                      widths=(4,), cache_dir=cache)
        cold = sec46_design_space.run("gzip", **kwargs)
        assert cold["grid_points"] == 2
        assert cold["evaluations"] == 2
        assert cold["cached_evaluations"] == 0
        warm = sec46_design_space.run("gzip", jobs=2, **kwargs)
        assert warm["evaluations"] == 0
        assert warm["cached_evaluations"] == 2
        assert warm["ss_optimal"] == cold["ss_optimal"]
        assert warm["edp_gap"] == cold["edp_gap"]
        assert sec46_design_space.format_rows([cold, warm])

    def test_speedup_measures_engine_path(self):
        from repro.experiments import speedup

        rows = speedup.run(TINY)
        for row in rows:
            assert row["ss_seconds"] > 0
            assert row["synthetic_instructions"] > 0
            assert row["per_point_speedup"] > 0
