"""Property-style tests for the draw-stable samplers.

The guide-table and Fenwick samplers carry a bit-compatibility
contract: for any uniform draw ``u`` they must select exactly the
index ``bisect_right(cumulative, u * total)`` would — the determinism
goldens depend on it.  These tests hammer that contract over
randomized weight vectors, including the degenerate shapes the unit
tests don't reach: one-hot vectors, zero runs, and near-zero weights
drowned by huge neighbours.
"""

import random
from bisect import bisect_right
from itertools import accumulate

import pytest

from repro.core.sampling import FenwickSampler, GuideTableSampler


def _bisect_reference(weights, u):
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    return bisect_right(cumulative, u * total)


def _random_weights(rng, n):
    shape = rng.random()
    if shape < 0.15:
        # One-hot: all mass on a single entry.
        weights = [0] * n
        weights[rng.randrange(n)] = rng.randint(1, 10 ** 6)
        return weights
    if shape < 0.30:
        # Near-zero entries drowned by huge neighbours: the CDF steps
        # by 1 part in ~1e9, stressing the float bucket arithmetic.
        return [rng.choice((1, 10 ** 9)) for _ in range(n)]
    # Generic: heavy-tailed magnitudes with zero runs mixed in.
    return [0 if rng.random() < 0.3
            else rng.randint(1, 10 ** rng.randint(0, 8))
            for _ in range(n)]


def _probe_draws(rng, weights, count=40):
    """Uniform draws plus adversarial ones at the CDF step edges."""
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    draws = [rng.random() for _ in range(count)]
    for value in cumulative:
        # Exactly on a boundary and a hair to each side.
        for u in (value / total, (value - 0.5) / total,
                  (value + 0.5) / total):
            if 0.0 <= u < 1.0:
                draws.append(u)
    draws.append(0.0)
    return draws


class TestGuideTableBitCompat:
    def test_randomized_vectors_match_bisect(self):
        rng = random.Random(1234)
        for trial in range(200):
            n = rng.randint(1, 60)
            weights = _random_weights(rng, n)
            if sum(weights) == 0:
                weights[rng.randrange(n)] = 1
            sampler = GuideTableSampler(weights)
            for u in _probe_draws(rng, weights):
                assert sampler.sample(u) == _bisect_reference(weights, u), \
                    f"trial {trial}: weights={weights} u={u!r}"

    def test_one_hot_always_selects_the_hot_entry(self):
        rng = random.Random(99)
        for n in (1, 2, 3, 7, 33):
            for hot in range(n):
                weights = [0] * n
                weights[hot] = 5
                sampler = GuideTableSampler(weights)
                for _ in range(20):
                    assert sampler.sample(rng.random()) == hot

    def test_near_zero_weight_still_reachable(self):
        # A weight-1 entry between two 1e9 entries: the draw that lands
        # exactly in its sliver must select it, same as bisect.
        weights = [10 ** 9, 1, 10 ** 9]
        sampler = GuideTableSampler(weights)
        total = sum(weights)
        u = (10 ** 9 + 0.5) / total
        assert sampler.sample(u) == _bisect_reference(weights, u) == 1


class TestFenwickBitCompat:
    def test_randomized_vectors_match_bisect(self):
        rng = random.Random(4321)
        for trial in range(200):
            n = rng.randint(1, 60)
            weights = _random_weights(rng, n)
            if sum(weights) == 0:
                weights[rng.randrange(n)] = 1
            sampler = FenwickSampler(weights)
            for u in _probe_draws(rng, weights):
                assert sampler.sample(u) == _bisect_reference(weights, u), \
                    f"trial {trial}: weights={weights} u={u!r}"

    def test_drain_stays_bisect_compatible(self):
        # The synthesis use case: weights drain one at a time; after
        # every update the sampler must still agree with a bisect over
        # the *current* weights.
        rng = random.Random(7)
        weights = [rng.randint(0, 5) for _ in range(24)]
        weights[3] = 4  # ensure some mass
        sampler = FenwickSampler(weights)
        while sum(weights) > 0:
            u = rng.random()
            picked = sampler.sample(u)
            assert picked == _bisect_reference(weights, u)
            assert weights[picked] > 0  # zero entries are transparent
            sampler.add(picked, -1)
            weights[picked] -= 1
            assert sampler.weight(picked) == weights[picked]
        assert sampler.total == 0

    def test_one_hot_and_growth(self):
        sampler = FenwickSampler([0, 0, 9, 0])
        for _ in range(10):
            assert sampler.sample(random.Random(5).random()) == 2
        sampler.add(0, 3)
        weights = [3, 0, 9, 0]
        rng = random.Random(11)
        for _ in range(50):
            u = rng.random()
            assert sampler.sample(u) == _bisect_reference(weights, u)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative weight"):
            FenwickSampler([1, -2, 3])
