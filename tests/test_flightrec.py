"""The crash flight recorder: ring buffer, dump format, hooks."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import events, flightrec
from repro.obs.flightrec import FLIGHT_SCHEMA, FlightRecorder

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def clean_hooks():
    flightrec.uninstall()
    yield
    flightrec.uninstall()


def read_dump(path):
    lines = [json.loads(line)
             for line in path.read_text().splitlines()]
    return lines[0], lines[1:]


class TestRingBuffer:
    def test_capacity_keeps_only_the_tail(self, tmp_path):
        recorder = FlightRecorder(tmp_path, capacity=4)
        for index in range(10):
            recorder.record({"event": "tick", "seq": index})
        assert len(recorder) == 4
        path = recorder.dump("test")
        header, body = read_dump(path)
        assert [entry["seq"] for entry in body] == [6, 7, 8, 9]
        assert header["events"] == 4
        assert header["capacity"] == 4

    def test_dump_header_contract(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record({"event": "one"})
        path = recorder.dump("chaos-worker-kill", token="t1",
                             dispatch=3)
        assert path == tmp_path / f"flightrec-{os.getpid()}.jsonl"
        header, body = read_dump(path)
        assert header["schema"] == FLIGHT_SCHEMA
        assert header["kind"] == "flightrec"
        assert header["reason"] == "chaos-worker-kill"
        assert header["pid"] == os.getpid()
        assert header["token"] == "t1" and header["dispatch"] == 3
        assert body == [{"event": "one"}]

    def test_repeated_dump_overwrites(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record({"event": "a"})
        recorder.dump("first")
        recorder.record({"event": "b"})
        header, body = read_dump(recorder.dump("second"))
        assert header["reason"] == "second"
        assert [entry["event"] for entry in body] == ["a", "b"]

    def test_unserializable_fields_survive_via_repr(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record({"event": "odd", "obj": object()})
        _header, (entry,) = read_dump(recorder.dump("test"))
        assert entry["obj"].startswith("<object object")

    def test_unwritable_directory_returns_none(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        recorder = FlightRecorder(blocker / "sub")
        recorder.record({"event": "x"})
        assert recorder.dump("test") is None


class TestInstall:
    def test_install_records_emitted_events(self, tmp_path):
        recorder = flightrec.install(tmp_path, signals=False)
        events.emit("unit_start", level="debug", unit="u1")
        assert len(recorder) >= 1
        _header, body = read_dump(recorder.dump("test"))
        assert any(entry.get("event") == "unit_start"
                   for entry in body)

    def test_install_is_idempotent(self, tmp_path):
        first = flightrec.install(tmp_path, signals=False)
        second = flightrec.install(tmp_path, signals=False)
        assert flightrec.installed() is second
        events.emit("unit_start", level="debug")
        assert len(first) == 0  # old sink was removed

    def test_uninstall_removes_sink_and_module_dump(self, tmp_path):
        flightrec.install(tmp_path, signals=False)
        flightrec.uninstall()
        assert flightrec.installed() is None
        events.emit("unit_start", level="debug")
        assert flightrec.dump("test") is None

    def test_module_dump_uses_installed_recorder(self, tmp_path):
        flightrec.install(tmp_path, signals=False)
        events.emit("unit_ok", level="debug")
        path = flightrec.dump("chaos-worker-kill")
        assert path is not None and path.exists()


class TestDeathDumps:
    def _run(self, tmp_path, body):
        script = (
            "import sys\n"
            f"sys.path.insert(0, {str(SRC)!r})\n"
            "from repro.obs import flightrec\n"
            "from repro.obs import events\n"
            f"flightrec.install({str(tmp_path)!r})\n"
            "events.emit('unit_start', level='debug', unit='victim')\n"
            + body)
        return subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True,
                              timeout=60)

    def _single_dump(self, tmp_path):
        (dump,) = list(Path(tmp_path).glob("flightrec-*.jsonl"))
        return read_dump(dump)

    def test_unhandled_exception_dumps(self, tmp_path):
        proc = self._run(tmp_path, "raise RuntimeError('boom')\n")
        assert proc.returncode == 1
        assert "boom" in proc.stderr  # traceback still prints
        header, body = self._single_dump(tmp_path)
        assert header["reason"] == "unhandled-exception"
        assert "RuntimeError: boom" in header["error"]
        assert any(entry.get("event") == "unit_start"
                   for entry in body)

    def test_sigterm_dumps_and_preserves_exit_status(self, tmp_path):
        proc = self._run(
            tmp_path,
            "import os, signal\n"
            "os.kill(os.getpid(), signal.SIGTERM)\n")
        # The handler re-delivers, so the exit status still says
        # "killed by SIGTERM" — crash attribution stays innocent.
        assert proc.returncode == -signal.SIGTERM
        header, _body = self._single_dump(tmp_path)
        assert header["reason"] == "sigterm"
