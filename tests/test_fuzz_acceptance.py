"""Statistical acceptance: convergence checks and tolerance scaling."""

import pytest

from repro.config import baseline_config
from repro.core.profiler import profile_trace
from repro.core.synthesis import generate_synthetic_trace
from repro.frontend.functional import run_program
from repro.fuzz.acceptance import (
    ToleranceConfig,
    acceptance_report,
    chi_square_critical,
)
from repro.fuzz.generator import random_case
from repro.isa.iclass import IClass


@pytest.fixture(scope="module")
def profile_and_synthetic():
    case = random_case(seed=7, index=2)
    config = case.machine_config()
    trace = run_program(case.program(), 3000)
    profile = profile_trace(trace, config, order=1)
    synthetic = generate_synthetic_trace(profile, 4.0, seed=3)
    return profile, synthetic


class TestAcceptance:
    def test_faithful_synthesis_passes(self, profile_and_synthetic):
        profile, synthetic = profile_and_synthetic
        report = acceptance_report(profile, synthetic)
        assert report.passed, report.summary()
        assert report.synthetic_instructions == len(synthetic.instructions)
        names = {check.name for check in report.checks}
        assert any(name.startswith("mix[") for name in names)
        assert "taken_rate" in names

    def test_margins_are_positive_when_passing(self,
                                               profile_and_synthetic):
        profile, synthetic = profile_and_synthetic
        report = acceptance_report(profile, synthetic)
        for check in report.checks:
            assert check.margin >= 0.0, check.name

    def test_tampered_mix_fails(self, profile_and_synthetic):
        profile, synthetic = profile_and_synthetic
        # Rewrite every non-branch instruction to INT_ALU: the realized
        # mix no longer matches the profile.
        for inst in synthetic.instructions:
            if not inst.is_branch:
                inst.iclass = IClass.INT_ALU
        report = acceptance_report(profile, synthetic)
        assert not report.passed
        failing = {check.name for check in report.failures}
        assert any(name.startswith("mix[") for name in failing)
        assert "out of tolerance" in report.summary()

    def test_report_serializes(self, profile_and_synthetic):
        profile, synthetic = profile_and_synthetic
        data = acceptance_report(profile, synthetic).to_dict()
        assert data["passed"] in (True, False)
        assert data["checks"]
        assert {"name", "deviation", "tolerance",
                "margin"} <= set(data["checks"][0])


class TestToleranceModel:
    def test_tolerance_shrinks_with_length(self):
        tolerances = ToleranceConfig()
        loose = tolerances.effective(0.05, p=0.3, n=100)
        tight = tolerances.effective(0.05, p=0.3, n=10_000)
        assert loose > tight > 0.05

    def test_tolerance_floor_for_degenerate_p(self):
        tolerances = ToleranceConfig()
        # p=0 or 1 still gets a non-zero statistical allowance.
        assert tolerances.effective(0.05, p=0.0, n=100) > 0.05
        assert tolerances.effective(0.05, p=1.0, n=100) > 0.05

    def test_chi_square_critical_grows_with_df(self):
        values = [chi_square_critical(df, z=4.0)
                  for df in (1, 2, 5, 10)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_chi_square_critical_reasonable(self):
        # z=3 is the one-sided 0.99865 normal quantile; the matching
        # chi2(df=4) quantile is about 18.2.
        assert chi_square_critical(4, z=3.0) == pytest.approx(18.2,
                                                              rel=0.05)
