"""Fleet telemetry: context propagation, trace files, stitching, and
the end-to-end acceptance paths (multi-process sweep -> one trace;
chaos worker-kill -> flight recorder in the quarantine manifest)."""

import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.obs import flightrec, telemetry
from repro.obs.telemetry import TraceContext
from repro.obs.traceview import (
    build_tree,
    load_spans,
    split_traces,
    to_chrome_trace,
)
from repro.obs.tracing import current_span_id, trace_span


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.reset()
    flightrec.uninstall()
    obs.reset_registry()
    yield
    telemetry.reset()
    flightrec.uninstall()
    obs.reset_registry()


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext()
        restored = TraceContext.from_wire(context.to_wire())
        assert restored.trace_id == context.trace_id
        assert restored.parent_span_id is None

    def test_child_keeps_trace_id(self):
        context = TraceContext()
        child = context.child("abc123")
        assert child.trace_id == context.trace_id
        assert child.parent_span_id == "abc123"

    @pytest.mark.parametrize("payload", [
        None, {}, {"parent": "x"}, "garbage", 42, {"trace": ""}])
    def test_from_wire_rejects_garbage(self, payload):
        assert TraceContext.from_wire(payload) is None

    def test_trace_id_is_32_hex(self):
        assert len(TraceContext().trace_id) == 32
        int(TraceContext().trace_id, 16)


class TestProcessTelemetry:
    def test_inactive_by_default(self):
        assert telemetry.current_context() is None
        assert telemetry.propagation_payload() is None
        assert telemetry.adopt(None) is None

    def test_start_activates_and_reset_deactivates(self, tmp_path):
        context = telemetry.start(trace_dir=tmp_path)
        assert telemetry.current_context() is context
        assert telemetry.trace_directory() == tmp_path
        telemetry.reset()
        assert telemetry.current_context() is None

    def test_propagation_carries_innermost_span(self, tmp_path):
        telemetry.start(trace_dir=tmp_path)
        with trace_span("sweep"):
            payload = telemetry.propagation_payload()
            assert payload["parent"] == current_span_id()
            assert payload["trace_dir"] == str(tmp_path)

    def test_adopt_round_trip(self, tmp_path):
        context = telemetry.start(trace_dir=tmp_path)
        payload = telemetry.propagation_payload()
        telemetry.reset()
        adopted = telemetry.adopt(payload)
        assert adopted.trace_id == context.trace_id
        assert telemetry.trace_directory() == tmp_path

    def test_activate_is_thread_scoped(self, tmp_path):
        process_ctx = telemetry.start(trace_dir=tmp_path)
        override = TraceContext()
        with telemetry.activate(override):
            assert telemetry.current_context() is override
        assert telemetry.current_context() is process_ctx

    def test_spans_written_and_linked(self, tmp_path):
        telemetry.start(trace_dir=tmp_path)
        with trace_span("outer", bench="gzip"):
            with trace_span("inner"):
                pass
        spans = load_spans(tmp_path)
        assert len(spans) == 2
        by_phase = {span["phase"]: span for span in spans}
        assert by_phase["inner"]["parent"] == by_phase["outer"]["span"]
        assert by_phase["outer"]["parent"] is None
        assert by_phase["outer"]["fields"]["bench"] == "gzip"
        assert all(span["pid"] == os.getpid() for span in spans)

    def test_no_trace_dir_no_files(self, tmp_path):
        telemetry.start()
        with trace_span("outer"):
            pass
        assert load_spans(tmp_path) == []

    def test_events_carry_trace_and_pid(self, tmp_path):
        telemetry.start(trace_dir=tmp_path)
        captured = []
        obs.add_sink(captured.append)
        try:
            obs.emit("run_start", level="debug")
        finally:
            obs.remove_sink(captured.append)
        (event,) = captured
        assert event["trace"] == telemetry.current_context().trace_id
        assert event["pid"] == os.getpid()

    def test_flush_metrics_writes_per_pid_file(self, tmp_path):
        telemetry.start(trace_dir=tmp_path)
        obs.get_registry().counter("dse.evaluated").inc()
        path = telemetry.flush_metrics(force=True)
        assert path == tmp_path / f"metrics-{os.getpid()}.json"
        payload = json.loads(path.read_text())
        assert payload["counters"]["dse.evaluated"] == 1


class TestTraceTree:
    def make_spans(self):
        return [
            {"trace": "t1", "span": "a", "parent": None, "pid": 1,
             "phase": "cli", "ts": 1.0, "elapsed": 5.0},
            {"trace": "t1", "span": "b", "parent": "a", "pid": 1,
             "phase": "sweep", "ts": 1.1, "elapsed": 4.0},
            {"trace": "t1", "span": "c", "parent": "b", "pid": 2,
             "phase": "evaluate", "ts": 1.2, "elapsed": 3.0},
            {"trace": "t1", "span": "d", "parent": "b", "pid": 3,
             "phase": "evaluate", "ts": 1.3, "elapsed": 1.0},
        ]

    def test_single_root_and_pids(self):
        tree = build_tree(self.make_spans())
        assert tree.single_rooted() and tree.acyclic()
        assert tree.pids() == [1, 2, 3]

    def test_critical_path_descends_slowest_child(self):
        tree = build_tree(self.make_spans())
        assert [s["span"] for s in tree.critical_path()] \
            == ["a", "b", "c"]

    def test_render_marks_critical_path_and_pids(self):
        rendered = build_tree(self.make_spans()).render()
        assert "critical path: cli[5.000s] -> sweep[4.000s] " \
            "-> evaluate[3.000s]" in rendered
        assert "pid=3" in rendered

    def test_unknown_parent_flagged_not_fatal(self):
        spans = self.make_spans()
        spans[2]["parent"] = "ghost"
        tree = build_tree(spans)
        assert not tree.single_rooted()
        assert any("unknown parent" in p for p in tree.problems)

    def test_cycle_detected(self):
        spans = self.make_spans()
        spans[0]["parent"] = "c"  # a -> b -> c -> a
        tree = build_tree(spans)
        assert not tree.acyclic()

    def test_split_traces_and_default_selection(self):
        spans = self.make_spans() + [
            {"trace": "t2", "span": "z", "parent": None, "pid": 9,
             "phase": "cli", "ts": 2.0, "elapsed": 0.1}]
        assert set(split_traces(spans)) == {"t1", "t2"}
        assert build_tree(spans).trace_id == "t1"  # most spans wins
        assert build_tree(spans, trace_id="t2").trace_id == "t2"

    def test_chrome_trace_export_shape(self):
        doc = to_chrome_trace(build_tree(self.make_spans()))
        events = doc["traceEvents"]
        assert len(events) == 4
        assert all(event["ph"] == "X" for event in events)
        assert all(event["ts"] >= 0 and event["dur"] >= 0
                   for event in events)
        assert {event["pid"] for event in events} == {1, 2, 3}
        assert doc["otherData"]["trace_id"] == "t1"
        json.dumps(doc)  # must be serializable as-is


def write_sweep(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({
        "name": "tele", "mode": "grid",
        "parameters": {"ruu_size": [32, 64, 128], "width": [2, 4]},
    }))
    return str(path)


class TestEndToEnd:
    def test_parallel_sweep_stitches_one_trace(self, tmp_path, capsys):
        trace_dir = tmp_path / "run"
        rc = main(["dse", "--sweep", write_sweep(tmp_path),
                   "--benchmark", "gzip", "--seeds", "0", "-R", "4",
                   "--jobs", "2", "--no-verify", "-q",
                   "--trace-dir", str(trace_dir)])
        assert rc == 0
        spans = load_spans(trace_dir)
        assert len(split_traces(spans)) == 1
        tree = build_tree(spans)
        assert tree.single_rooted(), tree.problems
        assert tree.acyclic(), tree.problems
        assert len(tree.pids()) >= 3  # CLI + at least 2 workers
        root = tree.by_id[tree.roots[0]]
        assert root["phase"] == "cli"
        # worker evaluate spans hang off the parent's sweep span
        sweep_spans = [s for s in spans if s["phase"] == "sweep"]
        evaluates = [s for s in spans if s["phase"] == "evaluate"]
        assert len(evaluates) == 6
        assert {s["parent"] for s in evaluates} \
            == {sweep_spans[0]["span"]}
        assert {s["pid"] for s in evaluates} != {os.getpid()}

        capsys.readouterr()
        assert main(["trace", str(trace_dir), "-q"]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert f"{len(spans)} spans" in out

        # per-process metrics flushed alongside the spans
        assert list(trace_dir.glob("metrics-*.json"))

    def test_trace_command_exports(self, tmp_path, capsys):
        telemetry.start(trace_dir=tmp_path)
        with trace_span("cli", command="x"):
            with trace_span("sweep"):
                pass
        telemetry.flush_metrics(force=True)
        telemetry.reset()
        export = tmp_path / "out" / "perfetto.json"
        metrics = tmp_path / "out" / "metrics.txt"
        rc = main(["trace", str(tmp_path), "-q",
                   "--export", str(export),
                   "--openmetrics", str(metrics)])
        assert rc == 0
        doc = json.loads(export.read_text())
        assert doc["traceEvents"]
        from repro.obs.exposition import validate_openmetrics
        assert validate_openmetrics(metrics.read_text()) == []

    def test_trace_command_empty_dir_errors(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path), "-q"]) == 2
        assert "no trace-" in capsys.readouterr().err

    def test_chaos_kill_links_flight_recorder(self, tmp_path):
        from repro.config import baseline_config
        from repro.core.profiler import profile_trace
        from repro.dse import SupervisorPolicy, SweepEngine, SweepSpec
        from repro.faults import ChaosPlan
        from repro.frontend.functional import run_program
        from repro.workloads.generator import (WorkloadConfig,
                                               generate_program)

        program = generate_program(WorkloadConfig(
            name="unit", seed=7, n_blocks=12, mean_block_size=4,
            working_set_kb=32, n_memory_streams=4))
        trace = run_program(program, n_instructions=1200)
        profile = profile_trace(trace, baseline_config(), order=1)
        points = SweepSpec(name="tele", mode="grid", parameters=(
            ("ruu_size", (16, 32)), ("lsq_size", (8,)),
            ("width", (2,)))).expand()

        engine = SweepEngine(
            profile, jobs=2,
            fault_plan=ChaosPlan.parse("worker-kill:match=ruu_size=16"),
            experiment="tele", benchmark="unit",
            supervisor_policy=SupervisorPolicy(max_point_retries=0),
            quarantine_path=tmp_path / "poison.json")
        sweep = engine.evaluate(points, seeds=(0,),
                                reduction_factor=12.0)
        assert sweep.quarantined == 1

        payload = json.loads((tmp_path / "poison.json").read_text())
        (record,) = payload["quarantined"]
        flight = record["flight_recorder"]
        assert flight, "quarantine record must link the flight dump"
        dump_path = Path(flight)
        assert dump_path.exists()
        assert dump_path.parent == tmp_path  # next to the manifest
        header = json.loads(dump_path.read_text().splitlines()[0])
        assert header["kind"] == "flightrec"
        assert header["reason"] == "chaos-worker-kill"
