"""Tests for the fault-tolerant task runner: containment, retries,
timeouts, checkpoint/resume and artifact integrity."""

import json
import time

import pytest

from repro.errors import (
    ArtifactCorruptError,
    InjectedFaultError,
    ProfileError,
    ReproError,
    SimulationError,
    SynthesisError,
    TaskTimeoutError,
    is_retryable,
)
from repro.runner import (
    CheckpointStore,
    FaultPlan,
    ResultRows,
    RunnerPolicy,
    RunReport,
    TaskRunner,
    UnitOutcome,
    WorkUnit,
    read_json_checked,
    report_footer,
    sanitize_unit_id,
    write_json_atomic,
)


def units(*benchmarks):
    return [WorkUnit(experiment="exp", benchmark=name)
            for name in benchmarks]


class TestErrorHierarchy:
    def test_subclassing(self):
        for cls in (ProfileError, SynthesisError, SimulationError,
                    ArtifactCorruptError, TaskTimeoutError,
                    InjectedFaultError):
            assert issubclass(cls, ReproError)
        # Back-compat: validation errors still catchable as ValueError.
        for cls in (ProfileError, SynthesisError, SimulationError,
                    ArtifactCorruptError):
            assert issubclass(cls, ValueError)
        assert issubclass(TaskTimeoutError, TimeoutError)

    def test_retryability(self):
        assert is_retryable(TaskTimeoutError("slow"))
        assert is_retryable(InjectedFaultError("boom"))
        assert not is_retryable(ArtifactCorruptError("bad"))
        assert not is_retryable(ValueError("bad"))


class TestWorkUnit:
    def test_unit_id(self):
        assert WorkUnit("table1", "gzip").unit_id == "table1/gzip"
        assert WorkUnit("fig6", "twolf", seed=3).unit_id == \
            "fig6/twolf/seed3"
        unit = WorkUnit("table4", "vpr", params=(("sweep", "cache"),))
        assert unit.unit_id == "table4/vpr/sweep=cache"

    def test_sanitize(self):
        assert "/" not in sanitize_unit_id("table4/vpr/sweep=cache")
        assert sanitize_unit_id("a b:c") == "a_b_c"


class TestContainment:
    def test_one_failure_does_not_abort(self):
        def fn(unit):
            if unit.benchmark == "bad":
                raise ValueError("broken benchmark")
            return {"benchmark": unit.benchmark}

        report = TaskRunner(fault_plan=None).run(
            units("good", "bad", "also-good"), fn)
        assert report.summary() == "2 ok / 1 failed / 0 skipped"
        assert [o.benchmark for o in report.failed] == ["bad"]
        error = report.failed[0].error
        assert error["type"] == "ValueError"
        assert "broken benchmark" in error["message"]
        assert not error["retryable"]
        assert report.results == [{"benchmark": "good"},
                                  {"benchmark": "also-good"}]

    def test_total_failure_raises(self):
        def fn(unit):
            raise ValueError("systematically broken")

        with pytest.raises(ValueError, match="systematically broken"):
            TaskRunner(fault_plan=None).run(units("a", "b"), fn)

    def test_total_failure_raise_can_be_disabled(self):
        runner = TaskRunner(fault_plan=None,
                            raise_on_total_failure=False)
        report = runner.run(units("a"), lambda u: 1 / 0)
        assert report.summary() == "0 ok / 1 failed / 0 skipped"

    def test_warning_lines(self):
        runner = TaskRunner(fault_plan=None)
        report = runner.run(
            units("ok", "bad"),
            lambda u: (_ for _ in ()).throw(RuntimeError("oops"))
            if u.benchmark == "bad" else {})
        lines = report.warning_lines()
        assert len(lines) == 1
        assert "exp/bad" in lines[0] and "RuntimeError" in lines[0]


class TestRetry:
    def test_transient_fault_is_retried(self):
        plan = FaultPlan(fail_benchmarks=("flaky",), fail_attempts=1)
        runner = TaskRunner(
            policy=RunnerPolicy(max_retries=2, backoff_base=0.0),
            fault_plan=plan)
        report = runner.run(units("flaky"), lambda u: {"ok": True})
        assert report.summary() == "1 ok / 0 failed / 0 skipped"
        assert report.ok[0].attempts == 2

    def test_permanent_fault_exhausts_retries(self):
        plan = FaultPlan(fail_benchmarks=("doomed",))
        runner = TaskRunner(
            policy=RunnerPolicy(max_retries=2, backoff_base=0.0),
            fault_plan=plan, raise_on_total_failure=False)
        report = runner.run(units("doomed"), lambda u: {"ok": True})
        outcome = report.failed[0]
        assert outcome.attempts == 3  # initial + 2 retries
        assert outcome.error["type"] == "InjectedFaultError"
        assert outcome.error["retryable"]

    def test_non_retryable_not_retried(self):
        calls = []

        def fn(unit):
            calls.append(unit.benchmark)
            raise KeyError("deterministic")

        runner = TaskRunner(policy=RunnerPolicy(max_retries=5),
                            fault_plan=None,
                            raise_on_total_failure=False)
        report = runner.run(units("a"), fn)
        assert len(calls) == 1
        assert report.failed[0].attempts == 1

    def test_backoff_schedule(self):
        policy = RunnerPolicy(backoff_base=0.1, backoff_factor=2.0,
                              backoff_cap=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)


class TestTimeout:
    def test_hung_unit_times_out(self):
        def fn(unit):
            time.sleep(5.0)
            return {}

        runner = TaskRunner(
            policy=RunnerPolicy(timeout=0.05, max_retries=0),
            fault_plan=None, raise_on_total_failure=False)
        started = time.perf_counter()
        report = runner.run(units("hung"), fn)
        assert time.perf_counter() - started < 2.0
        outcome = report.failed[0]
        assert outcome.error["type"] == "TaskTimeoutError"
        assert outcome.error["retryable"]

    def test_timeout_retry_can_succeed(self):
        calls = {"n": 0}

        def fn(unit):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(5.0)
            return {"attempt": calls["n"]}

        runner = TaskRunner(
            policy=RunnerPolicy(timeout=0.1, max_retries=1,
                                backoff_base=0.0),
            fault_plan=None)
        report = runner.run(units("slow-once"), fn)
        assert report.summary() == "1 ok / 0 failed / 0 skipped"
        assert report.ok[0].attempts == 2

    def test_fast_unit_unaffected(self):
        runner = TaskRunner(policy=RunnerPolicy(timeout=5.0),
                            fault_plan=None)
        report = runner.run(units("fast"), lambda u: {"v": 1})
        assert report.ok[0].result == {"v": 1}


class TestFaultPlan:
    def test_from_env_disabled_by_default(self):
        assert FaultPlan.from_env({}) is None

    def test_from_env(self):
        plan = FaultPlan.from_env({
            "REPRO_FAULT_BENCHMARKS": "gzip, twolf",
            "REPRO_FAULT_ATTEMPTS": "1",
            "REPRO_FAULT_SEED": "7",
        })
        assert plan.fail_benchmarks == ("gzip", "twolf")
        assert plan.fail_attempts == 1
        assert plan.seed == 7

    def test_runner_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BENCHMARKS", "victim")
        runner = TaskRunner(raise_on_total_failure=False)
        report = runner.run(units("victim"), lambda u: {})
        assert report.failed and \
            report.failed[0].error["type"] == "InjectedFaultError"

    def test_random_rate(self):
        plan = FaultPlan(fail_rate=1.0)
        with pytest.raises(InjectedFaultError):
            plan.inject("x", None, 1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_rate=1.5)


class TestCheckpointStore:
    def test_atomic_write_and_checksum(self, tmp_path):
        path = tmp_path / "unit.json"
        write_json_atomic(path, {"a": 1})
        assert not list(tmp_path.glob("*.tmp"))
        assert read_json_checked(path) == {"a": 1}

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "unit.json"
        write_json_atomic(path, {"a": 1})
        path.write_text(path.read_text()[:10])
        with pytest.raises(ArtifactCorruptError, match="JSON"):
            read_json_checked(path)

    def test_tamper_detected(self, tmp_path):
        path = tmp_path / "unit.json"
        write_json_atomic(path, {"a": 1})
        document = json.loads(path.read_text())
        document["a"] = 2
        path.write_text(json.dumps(document))
        with pytest.raises(ArtifactCorruptError, match="integrity"):
            read_json_checked(path)

    def test_missing_checksum_detected(self, tmp_path):
        path = tmp_path / "unit.json"
        path.write_text(json.dumps({"a": 1}))
        with pytest.raises(ArtifactCorruptError, match="checksum"):
            read_json_checked(path)

    def test_store_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.store("exp/gzip", {"status": "ok", "result": [1, 2]})
        assert store.load("exp/gzip") == {"status": "ok",
                                          "result": [1, 2]}
        assert store.load("exp/other") is None


class TestResume:
    def _counting_fn(self, calls):
        def fn(unit):
            calls.append(unit.benchmark)
            if unit.benchmark == "bad":
                raise ValueError("still broken")
            return {"benchmark": unit.benchmark}
        return fn

    def test_resume_skips_completed_units(self, tmp_path):
        calls = []
        first = TaskRunner(run_dir=tmp_path / "run", fault_plan=None)
        first.run(units("a", "b"), self._counting_fn(calls))
        assert calls == ["a", "b"]

        second = TaskRunner(run_dir=tmp_path / "run", resume=True,
                            fault_plan=None)
        report = second.run(units("a", "b"), self._counting_fn(calls))
        assert calls == ["a", "b"]  # nothing re-ran
        assert report.summary() == "0 ok / 0 failed / 2 skipped"
        assert report.results == [{"benchmark": "a"},
                                  {"benchmark": "b"}]

    def test_resume_reruns_failed_units(self, tmp_path):
        calls = []
        first = TaskRunner(run_dir=tmp_path / "run", fault_plan=None)
        first.run(units("a", "bad"), self._counting_fn(calls))

        def fixed(unit):
            calls.append(unit.benchmark)
            return {"benchmark": unit.benchmark}

        second = TaskRunner(run_dir=tmp_path / "run", resume=True,
                            fault_plan=None)
        report = second.run(units("a", "bad"), fixed)
        assert calls == ["a", "bad", "bad"]
        assert report.summary() == "1 ok / 0 failed / 1 skipped"

    def test_resume_after_kill_mid_suite(self, tmp_path):
        """A sweep killed partway through (simulated by running only a
        prefix of the units) resumes where it stopped."""
        calls = []
        first = TaskRunner(run_dir=tmp_path / "run", fault_plan=None)
        first.run(units("a"), self._counting_fn(calls))  # killed after a

        second = TaskRunner(run_dir=tmp_path / "run", resume=True,
                            fault_plan=None)
        report = second.run(units("a", "b", "c"),
                            self._counting_fn(calls))
        assert calls == ["a", "b", "c"]
        assert report.summary() == "2 ok / 0 failed / 1 skipped"

    def test_corrupt_checkpoint_is_rerun(self, tmp_path):
        calls = []
        run_dir = tmp_path / "run"
        first = TaskRunner(run_dir=run_dir, fault_plan=None)
        first.run(units("a"), self._counting_fn(calls))
        checkpoint = next((run_dir / "units").glob("*.json"))
        checkpoint.write_text(checkpoint.read_text()[:20])

        second = TaskRunner(run_dir=run_dir, resume=True,
                            fault_plan=None)
        report = second.run(units("a"), self._counting_fn(calls))
        assert calls == ["a", "a"]
        assert report.summary() == "1 ok / 0 failed / 0 skipped"

    def test_without_resume_everything_reruns(self, tmp_path):
        calls = []
        run_dir = tmp_path / "run"
        TaskRunner(run_dir=run_dir, fault_plan=None).run(
            units("a"), self._counting_fn(calls))
        TaskRunner(run_dir=run_dir, fault_plan=None).run(
            units("a"), self._counting_fn(calls))
        assert calls == ["a", "a"]


class TestReporting:
    def test_result_rows_behave_like_lists(self):
        rows = ResultRows([{"a": 1}], report=RunReport())
        assert rows == [{"a": 1}]
        assert rows.report is not None

    def test_report_footer_silent_on_success(self):
        report = RunReport([UnitOutcome("e/a", "ok")])
        assert report_footer(ResultRows([], report=report)) == ""
        assert report_footer([{"plain": "list"}]) == ""

    def test_report_footer_on_failure(self):
        report = RunReport([
            UnitOutcome("e/a", "ok"),
            UnitOutcome("e/b", "failed",
                        error={"type": "ValueError", "message": "x"},
                        attempts=3),
        ])
        footer = report_footer(ResultRows([], report=report))
        assert "WARNING" in footer
        assert "run summary: 1 ok / 1 failed / 0 skipped" in footer
