"""Differential oracle: identical pipelines, injected skew, logs."""

from repro.config import baseline_config
from repro.cpu.pipeline import SuperscalarPipeline
from repro.cpu.reference import ReferencePipeline
from repro.cpu.source import ExecutionDrivenSource
from repro.faults import ChaosPlan
from repro.frontend.functional import run_program
from repro.fuzz.generator import random_case
from repro.fuzz.oracle import diff_program, diff_slots


def _small_case():
    return random_case(seed=7, index=1)


class TestIdenticalPipelines:
    def test_diff_program_reports_identical(self):
        case = _small_case()
        report = diff_program(case.program(), case.machine_config(),
                              1000, warmup=case.warmup)
        assert report.identical
        assert not report.field_diffs
        assert report.first_retirement_divergence is None
        assert not report.skew_injected
        assert report.summary() == "pipelines identical"

    def test_commit_logs_match_and_are_real_path_only(self):
        case = _small_case()
        config = case.machine_config()
        trace = run_program(case.program(), 800)
        ref_log, opt_log = [], []
        ref = ReferencePipeline(
            config, ExecutionDrivenSource(trace, config)).run(
            commit_log=ref_log)
        opt = SuperscalarPipeline(
            config, ExecutionDrivenSource(trace, config)).run(
            commit_log=opt_log)
        assert ref_log == opt_log
        assert len(ref_log) == ref.instructions == opt.instructions
        # Retirement order: cycles non-decreasing.
        cycles = [cycle for cycle, _ in ref_log]
        assert cycles == sorted(cycles)

    def test_diff_slots_on_synthetic_stream(self):
        from repro.core.profiler import profile_trace
        from repro.core.synthesis import generate_synthetic_trace

        case = _small_case()
        config = case.machine_config()
        trace = run_program(case.program(), 1500)
        profile = profile_trace(trace, config, order=1)
        synthetic = generate_synthetic_trace(profile, 3.0, seed=2)
        report = diff_slots(synthetic.to_fetch_slots(config), config)
        assert report.identical


class TestInjectedSkew:
    def test_skew_is_caught_and_flagged(self):
        case = _small_case()
        plan = ChaosPlan.parse("seed=1;pipeline-skew:rate=1.0")
        report = diff_program(case.program(), case.machine_config(),
                              600, chaos=plan, token=case.case_id)
        assert not report.identical
        assert report.skew_injected
        fields = {diff.field for diff in report.field_diffs}
        assert "cycles" in fields
        assert report.first_retirement_divergence is not None
        assert "injected skew" in report.summary()

    def test_skew_keyed_by_token(self):
        case = _small_case()
        plan = ChaosPlan.parse(
            "seed=1;pipeline-skew:rate=1.0,match=other-case")
        report = diff_program(case.program(), case.machine_config(),
                              600, chaos=plan, token=case.case_id)
        assert report.identical  # match excludes this token

    def test_legacy_plan_without_skew_site_is_harmless(self):
        class LegacyPlan:  # no skews_pipeline attribute
            pass

        case = _small_case()
        report = diff_program(case.program(), case.machine_config(),
                              600, chaos=LegacyPlan(),
                              token=case.case_id)
        assert report.identical

    def test_report_round_trips_to_dict(self):
        case = _small_case()
        plan = ChaosPlan.parse("seed=1;pipeline-skew:rate=1.0")
        report = diff_program(case.program(), case.machine_config(),
                              600, chaos=plan, token=case.case_id)
        data = report.to_dict()
        assert data["identical"] is False
        assert data["skew_injected"] is True
        assert data["field_diffs"][0]["field"] == "cycles"
