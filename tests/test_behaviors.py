"""Unit and property tests for branch behaviours and memory streams."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    IndirectBehavior,
    LoopBehavior,
    PatternBehavior,
    PointerChaseStream,
    RandomStream,
    StridedStream,
    make_branch_behavior,
    make_memory_stream,
)


class TestLoopBehavior:
    def test_trip_count_semantics(self):
        loop = LoopBehavior(trip_count=4)
        outcomes = [loop.next_taken() for _ in range(8)]
        # Taken 3 times, not taken once, repeating.
        assert outcomes == [True, True, True, False] * 2

    def test_trip_one_never_taken(self):
        loop = LoopBehavior(trip_count=1)
        assert [loop.next_taken() for _ in range(3)] == [False] * 3

    def test_reset(self):
        loop = LoopBehavior(trip_count=3)
        first = [loop.next_taken() for _ in range(5)]
        loop.reset()
        assert [loop.next_taken() for _ in range(5)] == first

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            LoopBehavior(trip_count=0)

    @given(st.integers(min_value=2, max_value=50))
    def test_exit_frequency(self, trip):
        loop = LoopBehavior(trip_count=trip)
        outcomes = [loop.next_taken() for _ in range(trip * 10)]
        assert outcomes.count(False) == 10


class TestPatternBehavior:
    def test_pattern_cycles(self):
        pattern = PatternBehavior("TNT")
        outcomes = [pattern.next_taken() for _ in range(6)]
        assert outcomes == [True, False, True, True, False, True]

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            PatternBehavior("TXT")
        with pytest.raises(ValueError):
            PatternBehavior("")

    @given(st.text(alphabet="TN", min_size=1, max_size=12))
    def test_period_property(self, text):
        pattern = PatternBehavior(text)
        cycle1 = [pattern.next_taken() for _ in range(len(text))]
        cycle2 = [pattern.next_taken() for _ in range(len(text))]
        assert cycle1 == cycle2
        assert cycle1 == [c == "T" for c in text]


class TestBiasedRandomBehavior:
    def test_determinism(self):
        a = BiasedRandomBehavior(0.7, seed=42)
        b = BiasedRandomBehavior(0.7, seed=42)
        assert [a.next_taken() for _ in range(50)] == \
               [b.next_taken() for _ in range(50)]

    def test_reset_replays(self):
        behavior = BiasedRandomBehavior(0.5, seed=9)
        first = [behavior.next_taken() for _ in range(30)]
        behavior.reset()
        assert [behavior.next_taken() for _ in range(30)] == first

    def test_bias_respected(self):
        behavior = BiasedRandomBehavior(0.9, seed=1)
        outcomes = [behavior.next_taken() for _ in range(2000)]
        assert 0.85 < sum(outcomes) / len(outcomes) < 0.95

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BiasedRandomBehavior(1.5, seed=0)


class TestIndirectBehavior:
    def test_targets_in_range(self):
        behavior = IndirectBehavior(n_targets=4, switch_period=10, seed=3)
        for _ in range(100):
            assert 0 <= behavior.next_target() < 4

    def test_mostly_monomorphic(self):
        behavior = IndirectBehavior(n_targets=8, switch_period=100, seed=3)
        targets = [behavior.next_target() for _ in range(100)]
        # Within one switch period the target is stable.
        assert len(set(targets[:99])) <= 2

    def test_reset(self):
        behavior = IndirectBehavior(n_targets=5, switch_period=7, seed=11)
        first = [behavior.next_target() for _ in range(40)]
        behavior.reset()
        assert [behavior.next_target() for _ in range(40)] == first


class TestStridedStream:
    def test_sequential_and_wraps(self):
        stream = StridedStream(base=100, stride=8, length=24)
        addresses = [stream.next_address() for _ in range(6)]
        assert addresses == [100, 108, 116, 100, 108, 116]

    def test_reset(self):
        stream = StridedStream(base=0, stride=4, length=64)
        first = [stream.next_address() for _ in range(10)]
        stream.reset()
        assert [stream.next_address() for _ in range(10)] == first

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StridedStream(base=0, stride=0, length=64)


class TestRandomStream:
    def test_stays_in_working_set(self):
        stream = RandomStream(base=1000, working_set=256, align=8, seed=5)
        for _ in range(200):
            address = stream.next_address()
            assert 1000 <= address < 1000 + 256
            assert address % 8 == 0

    def test_deterministic(self):
        a = RandomStream(base=0, working_set=4096, seed=2)
        b = RandomStream(base=0, working_set=4096, seed=2)
        assert [a.next_address() for _ in range(30)] == \
               [b.next_address() for _ in range(30)]


class TestPointerChaseStream:
    def test_addresses_node_aligned_in_range(self):
        stream = PointerChaseStream(base=0, n_nodes=16, node_bytes=64,
                                    seed=3)
        for _ in range(100):
            address = stream.next_address()
            assert 0 <= address < 16 * 64
            assert address % 64 == 0

    def test_reset(self):
        stream = PointerChaseStream(base=0, n_nodes=37, seed=5)
        first = [stream.next_address() for _ in range(50)]
        stream.reset()
        assert [stream.next_address() for _ in range(50)] == first


class TestFactories:
    def test_make_branch_behavior_kinds(self):
        rng = random.Random(0)
        assert isinstance(make_branch_behavior("loop", rng), LoopBehavior)
        assert isinstance(make_branch_behavior("pattern", rng),
                          PatternBehavior)
        assert isinstance(make_branch_behavior("random", rng, p_taken=0.4),
                          BiasedRandomBehavior)
        with pytest.raises(ValueError):
            make_branch_behavior("bogus", rng)

    def test_make_memory_stream_kinds(self):
        rng = random.Random(0)
        for kind, cls in (("strided", StridedStream),
                          ("random", RandomStream),
                          ("chase", PointerChaseStream),
                          ("hot", RandomStream)):
            stream = make_memory_stream(kind, rng, base=0,
                                        working_set=8192)
            assert isinstance(stream, cls)
        with pytest.raises(ValueError):
            make_memory_stream("bogus", rng, base=0, working_set=1024)

    def test_hot_stream_is_small(self):
        rng = random.Random(1)
        stream = make_memory_stream("hot", rng, base=0,
                                    working_set=1 << 20)
        for _ in range(100):
            assert stream.next_address() < 2048
