"""Tests for profile serialization (save/load round-trips) and
artifact integrity (atomic writes, checksums, validation)."""

import json

import pytest

from repro.config import baseline_config, simplescalar_default_config
from repro.errors import ArtifactCorruptError
from repro.core.profiler import profile_trace
from repro.core.serialization import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.core.synthesis import generate_synthetic_trace


@pytest.fixture
def profile(small_trace, config):
    return profile_trace(small_trace, config, order=1)


class TestRoundTrip:
    def test_metadata_preserved(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        assert clone.name == profile.name
        assert clone.order == profile.order
        assert clone.branch_mode == profile.branch_mode
        assert clone.trace_instructions == profile.trace_instructions
        assert clone.config == profile.config

    def test_graph_preserved(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        assert set(clone.sfg.contexts) == set(profile.sfg.contexts)
        assert clone.sfg.transitions == profile.sfg.transitions
        assert clone.sfg.total_block_executions == \
            profile.sfg.total_block_executions
        for key, stats in profile.sfg.contexts.items():
            other = clone.sfg.contexts[key]
            assert other.occurrences == stats.occurrences
            assert other.iclasses == stats.iclasses
            assert other.dep_hists == stats.dep_hists
            assert other.waw_hists == stats.waw_hists
            assert other.il1 == stats.il1
            assert other.outcome_counts == stats.outcome_counts

    def test_clone_validates(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        clone.sfg.validate()

    def test_synthesis_identical_from_clone(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        original = generate_synthetic_trace(profile, 4, seed=9)
        regenerated = generate_synthetic_trace(clone, 4, seed=9)
        assert [i.iclass for i in original] == \
            [i.iclass for i in regenerated]
        assert [i.dep_distances for i in original] == \
            [i.dep_distances for i in regenerated]

    def test_json_compatible(self, profile):
        json.dumps(profile_to_dict(profile))  # must not raise

    def test_file_round_trip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        clone = load_profile(path)
        assert clone.num_nodes == profile.num_nodes

    def test_config_round_trip_non_default(self, small_trace):
        config = simplescalar_default_config()
        profile = profile_trace(small_trace, config, order=0)
        clone = profile_from_dict(profile_to_dict(profile))
        assert clone.config == config

    def test_unknown_format_rejected(self, profile):
        data = profile_to_dict(profile)
        data["format"] = 99
        with pytest.raises(ValueError):
            profile_from_dict(data)


class TestArtifactIntegrity:
    """save_profile is atomic and checksummed; load_profile turns every
    corruption mode into a structured ArtifactCorruptError instead of a
    bare JSONDecodeError/KeyError."""

    def test_save_is_atomic_and_checksummed(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        assert not list(tmp_path.glob("*.tmp"))
        data = json.loads(path.read_text())
        assert "checksum" in data
        assert load_profile(path).num_nodes == profile.num_nodes

    def test_truncated_file_detected(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        with pytest.raises(ArtifactCorruptError, match="JSON"):
            load_profile(path)

    def test_tampered_payload_detected(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        data = json.loads(path.read_text())
        data["trace_instructions"] += 1  # checksum left stale
        path.write_text(json.dumps(data))
        with pytest.raises(ArtifactCorruptError, match="integrity"):
            load_profile(path)

    def test_empty_file_detected(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("")
        with pytest.raises(ArtifactCorruptError):
            load_profile(path)

    def test_missing_file_detected(self, tmp_path):
        with pytest.raises(ArtifactCorruptError, match="cannot read"):
            load_profile(tmp_path / "nope.json")

    def test_corrupt_error_is_a_value_error(self):
        # Back-compat: callers catching ValueError keep working.
        assert issubclass(ArtifactCorruptError, ValueError)


class TestInputValidation:
    """profile_from_dict no longer trusts its input."""

    def test_missing_keys_named(self, profile):
        data = profile_to_dict(profile)
        del data["contexts"]
        del data["config"]
        with pytest.raises(ArtifactCorruptError) as excinfo:
            profile_from_dict(data)
        assert "contexts" in str(excinfo.value)
        assert "config" in str(excinfo.value)

    def test_non_dict_rejected(self):
        with pytest.raises(ArtifactCorruptError, match="JSON object"):
            profile_from_dict([1, 2, 3])

    @pytest.mark.parametrize("order", ["1", -1, 1.5, None, True])
    def test_bad_order_rejected(self, profile, order):
        data = profile_to_dict(profile)
        data["order"] = order
        with pytest.raises(ArtifactCorruptError, match="order"):
            profile_from_dict(data)

    def test_order_zero_still_accepted(self, small_trace, config):
        # Order 0 is a legal SFG (no control-flow history).
        profile = profile_trace(small_trace, config, order=0)
        clone = profile_from_dict(profile_to_dict(profile))
        assert clone.order == 0

    def test_bad_branch_mode_rejected(self, profile):
        data = profile_to_dict(profile)
        data["branch_mode"] = "psychic"
        with pytest.raises(ArtifactCorruptError, match="branch_mode"):
            profile_from_dict(data)

    def test_history_length_mismatch_rejected(self, profile):
        # Claiming order 2 over order-1 transition histories must fail
        # up front, not corrupt the reconstructed graph.
        data = profile_to_dict(profile)
        data["order"] = 2
        with pytest.raises(ArtifactCorruptError, match="history"):
            profile_from_dict(data)

    def test_malformed_context_payload_rejected(self, profile):
        data = profile_to_dict(profile)
        data["contexts"][0][1] = {"not": "a context"}
        with pytest.raises(ArtifactCorruptError, match="malformed"):
            profile_from_dict(data)
