"""Tests for profile serialization (save/load round-trips)."""

import json

import pytest

from repro.config import baseline_config, simplescalar_default_config
from repro.core.profiler import profile_trace
from repro.core.serialization import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.core.synthesis import generate_synthetic_trace


@pytest.fixture
def profile(small_trace, config):
    return profile_trace(small_trace, config, order=1)


class TestRoundTrip:
    def test_metadata_preserved(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        assert clone.name == profile.name
        assert clone.order == profile.order
        assert clone.branch_mode == profile.branch_mode
        assert clone.trace_instructions == profile.trace_instructions
        assert clone.config == profile.config

    def test_graph_preserved(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        assert set(clone.sfg.contexts) == set(profile.sfg.contexts)
        assert clone.sfg.transitions == profile.sfg.transitions
        assert clone.sfg.total_block_executions == \
            profile.sfg.total_block_executions
        for key, stats in profile.sfg.contexts.items():
            other = clone.sfg.contexts[key]
            assert other.occurrences == stats.occurrences
            assert other.iclasses == stats.iclasses
            assert other.dep_hists == stats.dep_hists
            assert other.waw_hists == stats.waw_hists
            assert other.il1 == stats.il1
            assert other.outcome_counts == stats.outcome_counts

    def test_clone_validates(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        clone.sfg.validate()

    def test_synthesis_identical_from_clone(self, profile):
        clone = profile_from_dict(profile_to_dict(profile))
        original = generate_synthetic_trace(profile, 4, seed=9)
        regenerated = generate_synthetic_trace(clone, 4, seed=9)
        assert [i.iclass for i in original] == \
            [i.iclass for i in regenerated]
        assert [i.dep_distances for i in original] == \
            [i.dep_distances for i in regenerated]

    def test_json_compatible(self, profile):
        json.dumps(profile_to_dict(profile))  # must not raise

    def test_file_round_trip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        clone = load_profile(path)
        assert clone.num_nodes == profile.num_nodes

    def test_config_round_trip_non_default(self, small_trace):
        config = simplescalar_default_config()
        profile = profile_trace(small_trace, config, order=0)
        clone = profile_from_dict(profile_to_dict(profile))
        assert clone.config == config

    def test_unknown_format_rejected(self, profile):
        data = profile_to_dict(profile)
        data["format"] = 99
        with pytest.raises(ValueError):
            profile_from_dict(data)
