"""Tests for the SPECint2000-named workload suite."""

import pytest

from repro.workloads.spec import (
    SPEC_INT_2000,
    benchmark_names,
    build_benchmark,
    build_suite,
)


def test_ten_benchmarks():
    # The paper evaluates ten SPEC CINT2000 benchmarks (Table 1).
    assert len(SPEC_INT_2000) == 10
    assert benchmark_names() == ["bzip2", "crafty", "eon", "gcc", "gzip",
                                 "parser", "perlbmk", "twolf", "vortex",
                                 "vpr"]


def test_build_benchmark_deterministic():
    a = build_benchmark("gzip")
    b = build_benchmark("gzip")
    assert a.num_blocks == b.num_blocks
    assert [blk.address for blk in a.blocks] == \
           [blk.address for blk in b.blocks]


def test_unknown_benchmark():
    with pytest.raises(KeyError):
        build_benchmark("mcf")


def test_build_suite_subset():
    suite = build_suite(["gzip", "vpr"])
    assert set(suite) == {"gzip", "vpr"}


def test_static_size_ordering():
    # Table 3 ordering: gcc has by far the largest static code, vpr the
    # smallest hot code.
    sizes = {name: build_benchmark(name).num_blocks
             for name in ("gcc", "vortex", "gzip", "vpr")}
    assert sizes["gcc"] > sizes["vortex"] > sizes["gzip"] > 0
    assert sizes["vpr"] <= sizes["gzip"]


def test_personalities_distinct():
    # Compressors are loop-heavy; crafty/twolf are random-branch heavy.
    assert SPEC_INT_2000["gzip"].loop_fraction > \
        SPEC_INT_2000["twolf"].loop_fraction
    assert SPEC_INT_2000["crafty"].working_set_kb > \
        SPEC_INT_2000["gzip"].working_set_kb
    assert SPEC_INT_2000["eon"].indirect_fraction > 0.05
    assert SPEC_INT_2000["perlbmk"].indirect_fraction > 0.05


def test_configs_named_consistently():
    for name, config in SPEC_INT_2000.items():
        assert config.name == name
