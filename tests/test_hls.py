"""Tests for the HLS baseline."""

import pytest

from repro.config import simplescalar_default_config
from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.branch.unit import BranchOutcome
from repro.baselines.hls import (
    HLS_NUM_BLOCKS,
    generate_hls_trace,
    hls_profile,
    run_hls_simulation,
)


@pytest.fixture
def profile(small_trace, config):
    return hls_profile(small_trace, config)


class TestHlsProfile:
    def test_mix_sums_to_one(self, profile):
        assert abs(sum(profile.instruction_mix.values()) - 1.0) < 1e-9

    def test_block_size_statistics(self, profile, small_trace):
        sizes = []
        count = 0
        for inst in small_trace:
            count += 1
            if inst.iclass in BRANCH_CLASSES:
                sizes.append(count)
                count = 0
        assert profile.mean_block_size == pytest.approx(
            sum(sizes) / len(sizes))

    def test_rates_are_probabilities(self, profile):
        for value in (profile.taken_rate, profile.redirect_rate,
                      profile.misprediction_rate,
                      profile.dependency_fraction):
            assert 0.0 <= value <= 1.0
        for rate in profile.miss_rates.values():
            assert 0.0 <= rate <= 1.0

    def test_global_dependency_distribution(self, profile):
        distances, weights = profile.dependency_distances
        assert len(distances) == len(weights)
        assert all(d >= 1 for d in distances)


class TestHlsTraceGeneration:
    def test_requested_length(self, profile):
        trace = generate_hls_trace(profile, length=500, seed=0)
        assert len(trace) == 500

    def test_deterministic(self, profile):
        a = generate_hls_trace(profile, length=300, seed=4)
        b = generate_hls_trace(profile, length=300, seed=4)
        assert [i.iclass for i in a] == [i.iclass for i in b]

    def test_no_deps_on_branch_or_store(self, profile):
        trace = generate_hls_trace(profile, length=800, seed=1)
        instructions = trace.instructions
        for index, inst in enumerate(instructions):
            for distance in inst.dep_distances:
                target = index - distance
                if target >= 0:
                    assert instructions[target].produces_register

    def test_branches_annotated(self, profile):
        trace = generate_hls_trace(profile, length=800, seed=1)
        for inst in trace:
            if inst.is_branch:
                assert inst.outcome in BranchOutcome

    def test_mix_roughly_preserved(self, profile):
        trace = generate_hls_trace(profile, length=4000, seed=2)
        load_fraction = sum(i.is_load for i in trace) / len(trace)
        target = profile.instruction_mix.get(IClass.LOAD, 0.0)
        assert abs(load_fraction - target) < 0.08


class TestHlsSimulation:
    def test_end_to_end(self, small_trace):
        config = simplescalar_default_config()
        result, power = run_hls_simulation(small_trace, config,
                                           synthetic_length=1000, seed=0)
        assert result.instructions == 1000
        assert power.total > 0
