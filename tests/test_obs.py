"""Unit tests for the observability layer (repro.obs): structured
events, metrics registry round-trips, phase tracing, profiling hook."""

import json
import logging

import pytest

from repro import obs
from repro.obs.metrics import PHASE_PREFIX, MetricsRegistry, TimingHistogram
from repro.obs.tracing import current_span


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts unconfigured with a fresh registry."""
    obs.reset()
    obs.reset_registry()
    yield
    obs.reset()
    obs.reset_registry()


def read_events(path):
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


class TestEventLog:
    def test_jsonl_schema_stability(self, tmp_path):
        """Every emitted line parses as JSON and carries the stable
        required fields with a monotonic sequence number."""
        log = tmp_path / "events.jsonl"
        run = obs.configure(console=False, log_json=log)
        obs.emit("alpha", level="debug", bench="gzip")
        obs.info("progress line", event="status", step=2)
        obs.warn("something odd")
        obs.error("broke")
        events = read_events(log)
        assert len(events) == 4
        for record in events:
            for field in obs.REQUIRED_FIELDS:
                assert field in record, f"missing {field}: {record}"
            assert record["schema"] == obs.SCHEMA
            assert record["run"] == run
        assert [r["seq"] for r in events] == [1, 2, 3, 4]
        assert [r["level"] for r in events] == \
            ["debug", "info", "warning", "error"]
        assert events[0]["bench"] == "gzip"
        assert events[1]["msg"] == "progress line"

    def test_timestamps_monotonic(self, tmp_path):
        log = tmp_path / "events.jsonl"
        obs.configure(console=False, log_json=log)
        for index in range(5):
            obs.emit("tick", level="debug", index=index)
        offsets = [r["t"] for r in read_events(log)]
        assert offsets == sorted(offsets)
        assert all(t >= 0 for t in offsets)

    def test_console_error_prefix_and_levels(self, tmp_path, capsys):
        """Default console shows info+ with the traditional error:
        prefix; debug events stay off the console but reach the sink."""
        log = tmp_path / "events.jsonl"
        obs.configure(log_json=log)
        obs.debug("hidden detail")
        obs.info("visible progress")
        obs.error("it failed")
        err = capsys.readouterr().err
        assert "hidden detail" not in err
        assert "visible progress" in err
        assert "error: it failed" in err
        assert len(read_events(log)) == 3  # sink records everything

    def test_quiet_console_level(self, capsys):
        obs.configure(console_level="warning")
        obs.info("suppressed")
        obs.warn("kept")
        err = capsys.readouterr().err
        assert "suppressed" not in err
        assert "warning: kept" in err

    def test_reconfigure_replaces_handlers(self, tmp_path):
        """Repeated configure() calls (one per CLI invocation) must not
        accumulate handlers or duplicate lines."""
        log = tmp_path / "events.jsonl"
        obs.configure(console=False, log_json=log)
        obs.configure(console=False, log_json=log)
        obs.info("once")
        logger = logging.getLogger("repro.obs")
        assert len(logger.handlers) == 1
        assert len(read_events(log)) == 1

    def test_unconfigured_emit_is_silent_noop(self, capsys):
        obs.emit("orphan", level="info")
        assert capsys.readouterr().err == ""

    def test_unknown_profile_mode_rejected(self):
        with pytest.raises(ValueError, match="profile mode"):
            obs.configure(console=False, profile="perf")


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("runner.retries").inc()
        registry.counter("runner.retries").inc(2)
        registry.gauge("pipeline.ipc").set(1.25)
        for value in (0.5, 1.5, 1.0):
            registry.histogram("phase.simulate").observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["runner.retries"] == 3
        assert snap["gauges"]["pipeline.ipc"] == 1.25
        hist = snap["histograms"]["phase.simulate"]
        assert hist["count"] == 3
        assert hist["min"] == 0.5 and hist["max"] == 1.5
        assert hist["mean"] == pytest.approx(1.0)
        assert snap["phases"] == {"simulate": hist}

    def test_counters_refuse_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_snapshot_round_trip_through_metrics_json(self, tmp_path):
        """write() -> read() -> snapshot() reproduces the original
        counters, gauges, histograms and derived phases."""
        registry = MetricsRegistry()
        registry.counter("runner.units_ok").inc(4)
        registry.counter("dse.cache_hits").inc(7)
        registry.gauge("pipeline.ruu_occupancy").set(43.5)
        registry.histogram("phase.profile").observe(0.2)
        registry.histogram("phase.synthesize").observe(0.05)
        registry.histogram("runner.unit_seconds").observe(1.5)
        path = registry.write(tmp_path / "metrics.json")

        restored = MetricsRegistry.read(path)
        original, recovered = registry.snapshot(), restored.snapshot()
        for section in ("counters", "gauges", "histograms", "phases"):
            assert recovered[section] == original[section]
        # and the file itself is plain, stable JSON
        payload = json.loads(path.read_text())
        assert payload["schema"] == obs.SNAPSHOT_SCHEMA
        assert set(payload["phases"]) == {"profile", "synthesize"}

    def test_histogram_payload_round_trip(self):
        hist = TimingHistogram()
        hist.observe(2.0)
        hist.observe(4.0)
        clone = TimingHistogram.from_payload(hist.to_payload())
        assert clone.to_payload() == hist.to_payload()

    def test_histogram_percentiles_in_payload(self):
        hist = TimingHistogram()
        for value in [0.01] * 90 + [0.5] * 9 + [8.0]:
            hist.observe(value)
        payload = hist.to_payload()
        # Log2 buckets: an estimate is the bucket's upper bound, so
        # it is within 2x above the true quantile, never below its
        # bucket's floor.
        assert 0.01 <= payload["p50"] <= 0.02
        assert 0.5 <= payload["p95"] <= 1.0
        assert 0.5 <= payload["p99"] <= 1.0  # rank 99 of 100 is a 0.5
        assert hist.percentile(1.0) == pytest.approx(8.0)

    def test_histogram_percentile_bounds(self):
        hist = TimingHistogram()
        assert hist.percentile(0.5) is None  # empty
        hist.observe(3.0)
        assert hist.percentile(0.5) == pytest.approx(3.0)
        assert hist.percentile(1.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_histogram_percentile_clamped_to_observed_range(self):
        hist = TimingHistogram()
        for value in (3.0, 3.5):  # both in the (2, 4] bucket
            hist.observe(value)
        # The bucket bound (4.0) exceeds the true max; clamp wins.
        assert hist.percentile(0.99) == pytest.approx(3.5)

    def test_histogram_zero_and_negative_observations(self):
        hist = TimingHistogram()
        hist.observe(0.0)
        hist.observe(-1.0)
        hist.observe(2.0)
        payload = hist.to_payload()
        assert payload["count"] == 3
        assert payload["p50"] == pytest.approx(0.0)

    def test_histogram_merge_sums_buckets(self):
        left, right = TimingHistogram(), TimingHistogram()
        for value in (0.1, 0.2):
            left.observe(value)
        for value in (4.0, 8.0):
            right.observe(value)
        merged = left.merge(right)
        assert merged is left
        assert merged.count == 4
        assert merged.min == pytest.approx(0.1)
        assert merged.max == pytest.approx(8.0)
        assert merged.percentile(0.99) == pytest.approx(8.0)

    def test_percentiles_survive_round_trip(self):
        hist = TimingHistogram()
        for value in (0.1, 0.5, 2.0, 9.0):
            hist.observe(value)
        clone = TimingHistogram.from_payload(hist.to_payload())
        for quantile in (0.5, 0.95, 0.99):
            assert clone.percentile(quantile) \
                == pytest.approx(hist.percentile(quantile))

    def test_record_simulation_publishes_pipeline_metrics(self):
        class FakeResult:
            cycles = 100
            instructions = 150
            squashed_instructions = 7
            branch_mispredictions = 3
            ipc = 1.5
            avg_ruu_occupancy = 40.0
            avg_lsq_occupancy = 12.0
            avg_ifq_occupancy = 6.0
            activity = {"ialu": 90, "l1d": 30}

        registry = MetricsRegistry()
        obs.record_simulation(FakeResult(), registry=registry)
        obs.record_simulation(FakeResult(), registry=registry)
        snap = registry.snapshot()
        assert snap["counters"]["pipeline.runs"] == 2
        assert snap["counters"]["pipeline.cycles"] == 200
        assert snap["counters"]["pipeline.instructions"] == 300
        assert snap["counters"]["pipeline.branch_mispredictions"] == 6
        assert snap["counters"]["pipeline.activity.ialu"] == 180
        assert snap["gauges"]["pipeline.ipc"] == 1.5
        assert snap["gauges"]["pipeline.ruu_occupancy"] == 40.0

    def test_reset_registry_installs_fresh_default(self):
        obs.get_registry().counter("stale").inc()
        obs.reset_registry()
        assert "stale" not in obs.get_registry().snapshot()["counters"]


class TestTracing:
    def test_span_nesting_and_timing_monotonicity(self):
        """Nested spans pop in LIFO order and a child's elapsed time
        never exceeds its parent's."""
        registry = MetricsRegistry()
        with obs.trace_span("synthesize", registry=registry,
                            bench="gzip") as outer:
            assert current_span() is outer
            with obs.trace_span("reduce", registry=registry) as inner:
                assert current_span() is inner
                assert inner.depth == outer.depth + 1
            assert current_span() is outer
            assert inner.elapsed is not None
        assert current_span() is None
        assert outer.elapsed >= inner.elapsed >= 0.0

        phases = registry.snapshot()["phases"]
        assert set(phases) == {"synthesize", "reduce"}
        assert phases["synthesize"]["count"] == 1
        assert phases["synthesize"]["total"] >= phases["reduce"]["total"]

    def test_span_context_fields_reach_events(self, tmp_path):
        """Events emitted inside a span inherit phase/bench/seed."""
        log = tmp_path / "events.jsonl"
        obs.configure(console=False, log_json=log)
        with obs.trace_span("simulate", bench="twolf", seed=3):
            obs.emit("inside", level="debug")
        obs.emit("outside", level="debug")
        by_event = {r["event"]: r for r in read_events(log)}
        assert by_event["inside"]["phase"] == "simulate"
        assert by_event["inside"]["bench"] == "twolf"
        assert by_event["inside"]["seed"] == 3
        assert "phase" not in by_event["outside"]
        end = by_event["span_end"]
        assert end["elapsed"] >= 0.0 and end["bench"] == "twolf"

    def test_span_records_histogram_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with obs.trace_span("profile", registry=registry):
                raise RuntimeError("boom")
        assert registry.snapshot()["phases"]["profile"]["count"] == 1
        assert current_span() is None

    def test_phase_breakdown_view(self):
        registry = MetricsRegistry()
        registry.histogram(PHASE_PREFIX + "profile").observe(1.0)
        registry.counter("runner.retries").inc()
        breakdown = obs.phase_breakdown(registry)
        assert list(breakdown) == ["profile"]


class TestProfilingHook:
    def test_disabled_returns_fn_unchanged(self):
        fn = lambda: 42  # noqa: E731
        assert obs.maybe_profiled(fn, "unit") is fn

    def test_armed_dumps_pstats_per_label(self, tmp_path):
        import pstats

        obs.configure(console=False, profile="cprofile",
                      profile_dir=tmp_path / "profiles")
        wrapped = obs.maybe_profiled(lambda: sum(range(100)),
                                     "table1/gzip")
        assert wrapped() == 4950
        dump = tmp_path / "profiles" / "table1_gzip.pstats"
        assert dump.exists()
        pstats.Stats(str(dump))  # parseable by the stdlib reader

    def test_nested_units_run_unprofiled(self, tmp_path):
        """Only the outermost unit of a thread gets a profiler; the
        inner dump must not exist (two active profilers corrupt)."""
        obs.configure(console=False, profile="cprofile",
                      profile_dir=tmp_path / "profiles")
        inner = obs.maybe_profiled(lambda: "inner", "inner-unit")
        outer = obs.maybe_profiled(inner, "outer-unit")
        assert outer() == "inner"
        assert (tmp_path / "profiles" / "outer-unit.pstats").exists()
        assert not (tmp_path / "profiles" / "inner-unit.pstats").exists()
