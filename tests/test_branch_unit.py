"""Tests for the branch predictor unit's outcome taxonomy."""

import pytest

from repro.config import BranchPredictorConfig
from repro.isa.iclass import IClass
from repro.isa.instruction import DynamicInstruction
from repro.branch.unit import BranchOutcome, BranchPredictorUnit


def _branch(pc=0x1000, taken=True, target=0x2000,
            iclass=IClass.INT_COND_BRANCH, seq=0):
    return DynamicInstruction(seq=seq, pc=pc, iclass=iclass, bb_id=0,
                              taken=taken, target=target)


@pytest.fixture
def unit():
    return BranchPredictorUnit(BranchPredictorConfig(
        meta_entries=256, bimodal_entries=256,
        local_history_entries=256, local_pht_entries=256,
        local_history_bits=8, btb_entries=64, btb_associativity=4))


class TestConditionalOutcomes:
    def test_wrong_direction_is_misprediction(self, unit):
        branch = _branch(taken=True)
        for _ in range(8):
            unit.train(_branch(taken=False))
        assert unit.classify(branch) is BranchOutcome.MISPREDICTION

    def test_correct_not_taken_needs_no_btb(self, unit):
        for _ in range(8):
            unit.train(_branch(taken=False))
        assert unit.classify(_branch(taken=False)) is BranchOutcome.CORRECT

    def test_correct_taken_with_btb_miss_is_redirection(self, unit):
        # Train direction only (train() fills the BTB, so train a branch
        # at a different PC and force direction state via the direction
        # predictor directly).
        for _ in range(8):
            unit.direction.update(0x1000, True)
        outcome = unit.classify(_branch(taken=True))
        assert outcome is BranchOutcome.FETCH_REDIRECTION

    def test_correct_taken_with_btb_hit_is_correct(self, unit):
        for _ in range(8):
            unit.train(_branch(taken=True))
        assert unit.classify(_branch(taken=True)) is BranchOutcome.CORRECT

    def test_stale_btb_target_is_redirection(self, unit):
        for _ in range(8):
            unit.train(_branch(taken=True, target=0x2000))
        outcome = unit.classify(_branch(taken=True, target=0x3000))
        assert outcome is BranchOutcome.FETCH_REDIRECTION


class TestIndirectOutcomes:
    def test_btb_miss_is_misprediction(self, unit):
        branch = _branch(iclass=IClass.INDIRECT_BRANCH)
        assert unit.classify(branch) is BranchOutcome.MISPREDICTION

    def test_btb_hit_is_correct(self, unit):
        branch = _branch(iclass=IClass.INDIRECT_BRANCH, target=0x4000)
        unit.train(branch)
        assert unit.classify(branch) is BranchOutcome.CORRECT

    def test_changed_target_is_misprediction(self, unit):
        unit.train(_branch(iclass=IClass.INDIRECT_BRANCH, target=0x4000))
        outcome = unit.classify(
            _branch(iclass=IClass.INDIRECT_BRANCH, target=0x5000))
        assert outcome is BranchOutcome.MISPREDICTION


class TestUnitBookkeeping:
    def test_counters(self, unit):
        branch = _branch()
        unit.classify(branch)
        unit.train(branch)
        assert unit.lookups == 1
        assert unit.updates == 1

    def test_classify_rejects_non_branch(self, unit):
        inst = DynamicInstruction(0, 0x1000, IClass.LOAD, 0)
        with pytest.raises(ValueError):
            unit.classify(inst)

    def test_record_wraps_classify(self, unit):
        record = unit.record(_branch(seq=42, taken=True))
        assert record.seq == 42
        assert record.taken is True
        assert record.outcome in BranchOutcome

    def test_not_taken_branches_do_not_fill_btb(self, unit):
        for _ in range(8):
            unit.train(_branch(taken=False))
        assert unit.btb.lookup(0x1000) is None
