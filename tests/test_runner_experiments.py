"""Acceptance tests: experiments routed through the fault-tolerant
runner degrade gracefully under fault injection and resume from
checkpoints (ISSUE 1 acceptance criteria)."""

import pytest

from repro.cli import main
from repro.errors import ProfileError, SimulationError, SynthesisError
from repro.experiments import fig6_absolute, table1_baseline
from repro.experiments.common import ExperimentScale
from repro.runner import FaultPlan, RunnerPolicy, TaskRunner

TINY = ExperimentScale(warmup=2000, reference=4000, reduction_factor=4.0,
                       seeds=(0,), benchmarks=("gzip", "twolf"))


class TestGracefulDegradation:
    def test_fault_injected_run_completes_with_summary(self, tmp_path):
        """One benchmark forced to fail: the experiment completes, the
        summary reports the failure, and the rendered table drops the
        failed row with an explicit warning."""
        runner = TaskRunner(
            policy=RunnerPolicy(max_retries=0),
            run_dir=tmp_path / "run",
            fault_plan=FaultPlan(fail_benchmarks=("gzip",)))
        rows = table1_baseline.run(TINY, runner=runner)

        assert [row["benchmark"] for row in rows] == ["twolf"]
        assert rows.report.summary() == "1 ok / 1 failed / 0 skipped"

        text = table1_baseline.format_rows(rows)
        table_lines = [line for line in text.splitlines()
                       if not line.startswith(("WARNING", "run summary"))]
        assert not any("gzip" in line for line in table_lines)
        assert "WARNING: table1/gzip failed" in text
        assert "run summary: 1 ok / 1 failed / 0 skipped" in text

    def test_resume_reruns_only_failed_units(self, tmp_path):
        """Second invocation with resume: the previously ok benchmark
        is skipped (loaded from its checkpoint), only the failed one
        re-runs, and the full table comes out."""
        run_dir = tmp_path / "run"
        first = TaskRunner(
            policy=RunnerPolicy(max_retries=0), run_dir=run_dir,
            fault_plan=FaultPlan(fail_benchmarks=("gzip",)))
        table1_baseline.run(TINY, runner=first)

        second = TaskRunner(run_dir=run_dir, resume=True,
                            fault_plan=None)
        rows = table1_baseline.run(TINY, runner=second)

        statuses = {outcome.benchmark: outcome.status
                    for outcome in rows.report.outcomes}
        assert statuses == {"gzip": "ok", "twolf": "skipped"}
        assert {row["benchmark"] for row in rows} == {"gzip", "twolf"}
        text = table1_baseline.format_rows(rows)
        assert "WARNING" not in text
        assert "run summary: 1 ok / 0 failed / 1 skipped" in text

    def test_resumed_rows_numerically_match(self, tmp_path):
        """Checkpointed results round-trip exactly through JSON."""
        run_dir = tmp_path / "run"
        fresh = table1_baseline.run(
            TINY, runner=TaskRunner(run_dir=run_dir, fault_plan=None))
        resumed = table1_baseline.run(
            TINY, runner=TaskRunner(run_dir=run_dir, resume=True,
                                    fault_plan=None))
        assert list(fresh) == list(resumed)

    def test_transient_fault_recovers_via_retry(self):
        """A fault injected only on the first attempt is absorbed by
        the retry budget: every row is produced."""
        runner = TaskRunner(
            policy=RunnerPolicy(max_retries=1, backoff_base=0.0),
            fault_plan=FaultPlan(fail_benchmarks=("gzip",),
                                 fail_attempts=1))
        rows = table1_baseline.run(TINY, runner=runner)
        assert {row["benchmark"] for row in rows} == {"gzip", "twolf"}
        attempts = {outcome.benchmark: outcome.attempts
                    for outcome in rows.report.outcomes}
        assert attempts["gzip"] == 2 and attempts["twolf"] == 1

    def test_prepare_suite_contains_failures(self):
        from repro.experiments.common import prepare_suite

        runner = TaskRunner(
            policy=RunnerPolicy(max_retries=0),
            fault_plan=FaultPlan(fail_benchmarks=("gzip",)))
        suite = prepare_suite(TINY, runner=runner)
        assert set(suite) == {"twolf"}
        assert suite.report.summary() == "1 ok / 1 failed / 0 skipped"

    def test_fig6_degrades_too(self):
        runner = TaskRunner(
            policy=RunnerPolicy(max_retries=0),
            fault_plan=FaultPlan(fail_benchmarks=("twolf",)))
        rows = fig6_absolute.run(TINY, runner=runner)
        assert [row["benchmark"] for row in rows] == ["gzip"]
        text = fig6_absolute.format_rows(rows)
        assert "WARNING: fig6/twolf failed" in text
        assert "average errors" in text


class TestCLI:
    def test_experiment_fault_injection_and_resume(self, tmp_path,
                                                   capsys, monkeypatch):
        run_dir = tmp_path / "run"
        monkeypatch.setenv("REPRO_FAULT_BENCHMARKS", "gzip")
        code = main(["experiment", "table1", "--benchmarks",
                     "gzip,twolf", "--run-dir", str(run_dir),
                     "--retries", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert "WARNING: table1/gzip failed" in captured.out
        assert "1 ok / 1 failed / 0 skipped" in captured.out

        monkeypatch.delenv("REPRO_FAULT_BENCHMARKS")
        code = main(["experiment", "table1", "--benchmarks",
                     "gzip,twolf", "--run-dir", str(run_dir),
                     "--resume"])
        captured = capsys.readouterr()
        assert code == 0
        assert "WARNING" not in captured.out
        assert "gzip" in captured.out and "twolf" in captured.out
        assert "resumed from checkpoint" in captured.err

    def test_resume_requires_run_dir(self, capsys):
        assert main(["experiment", "table1", "--resume"]) == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_unknown_benchmark_rejected(self, capsys):
        code = main(["experiment", "table1", "--benchmarks", "nosuch"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_negative_instructions_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "--instructions", "-5"])
        assert "positive integer" in capsys.readouterr().err

    def test_negative_warmup_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "--warmup", "-1"])
        assert "non-negative" in capsys.readouterr().err

    def test_zero_reduction_factor_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "-R", "0"])
        assert "positive number" in capsys.readouterr().err

    def test_zero_order_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "gzip", "-o", "x.json", "-k", "0"])
        assert "positive integer" in capsys.readouterr().err


class TestApiValidation:
    def test_run_statistical_simulation_rejects_bad_inputs(
            self, small_trace, config):
        from repro.core.framework import run_statistical_simulation

        with pytest.raises(SynthesisError, match="reduction_factor"):
            run_statistical_simulation(small_trace, config,
                                       reduction_factor=0)
        with pytest.raises(ProfileError, match="order"):
            run_statistical_simulation(small_trace, config, order=-1)

    def test_pipeline_rejects_unusable_config(self, config):
        from dataclasses import replace

        from repro.cpu.pipeline import SuperscalarPipeline

        # fetch_speed is not validated by MachineConfig itself; a zero
        # fetch width would livelock the fetch stage.
        broken = replace(config, fetch_speed=0)
        with pytest.raises(SimulationError, match="fetch_width"):
            SuperscalarPipeline(broken, source=None)
