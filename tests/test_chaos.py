"""Unified chaos-injection harness: spec grammar, deterministic fire
decisions, site behaviours, environment arbitration, and the legacy
FaultPlan shim."""

import os

import pytest

from repro.errors import (
    ChaosSpecError,
    InjectedFaultError,
    InjectedIOError,
)
from repro.faults import (
    SITES,
    WORKER_KILL_EXIT_CODE,
    ChaosPlan,
    ChaosSite,
    FaultPlan,
    active_sites,
    plan_from_env,
)
from repro.faults.chaos import _SITE_KEYS


class TestSpecParsing:
    def test_single_site_defaults(self):
        plan = ChaosPlan.parse("worker-kill")
        assert plan.seed == 0
        site = plan.sites["worker-kill"]
        assert site.rate == 1.0 and site.attempts == 0
        assert site.match == "" and site.delay == 0.25

    def test_full_grammar(self):
        plan = ChaosPlan.parse(
            "seed=5;worker-kill:rate=0.5,match=gzip,attempts=3;"
            "slow-call:delay=0.01")
        assert plan.seed == 5
        kill = plan.sites["worker-kill"]
        assert kill.rate == 0.5 and kill.match == "gzip"
        assert kill.attempts == 3
        assert plan.sites["slow-call"].delay == 0.01

    def test_roundtrip_omits_defaults(self):
        spec = "seed=5;artifact-corrupt:rate=0.4;worker-kill:match=a"
        plan = ChaosPlan.parse(spec)
        assert ChaosPlan.parse(plan.to_spec()) == plan
        assert "rate=1" not in plan.to_spec()

    @pytest.mark.parametrize("spec", [
        "", "  ", "bogus-site", "worker-kill:rate=2",
        "worker-kill:rate=-0.1", "worker-kill:bogus=1",
        "worker-kill;worker-kill", "seed=x;worker-kill",
        "worker-kill:attempts=-1", "slow-call:delay=-1",
        "worker-kill:match=a,b",
    ])
    def test_rejected_specs(self, spec):
        with pytest.raises(ChaosSpecError):
            ChaosPlan.parse(spec)

    def test_chaos_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            ChaosPlan.parse("bogus-site")

    def test_every_known_site_parses(self):
        for name in SITES:
            assert name in ChaosPlan.parse(name).sites

    def test_active_sites(self):
        plan = ChaosPlan.parse("worker-kill;io-error")
        assert active_sites(plan) == ("io-error", "worker-kill")
        assert active_sites(None) == ()

    def test_site_keys_cover_dataclass(self):
        fields = set(ChaosSite.__dataclass_fields__) - {"name"}
        assert fields == set(_SITE_KEYS)


class TestFireDecisions:
    def test_rate_one_always_fires(self):
        plan = ChaosPlan.parse("task-fail")
        assert all(plan.fires("task-fail", f"t{i}") for i in range(20))

    def test_rate_zero_never_fires(self):
        plan = ChaosPlan.parse("task-fail:rate=0")
        assert not any(plan.fires("task-fail", f"t{i}")
                       for i in range(20))

    def test_inactive_site_never_fires(self):
        plan = ChaosPlan.parse("task-fail")
        assert not plan.fires("worker-kill", "t")

    def test_fractional_rate_deterministic_and_plausible(self):
        plan = ChaosPlan.parse("seed=3;task-fail:rate=0.5")
        fired = [plan.fires("task-fail", f"t{i}") for i in range(200)]
        again = [plan.fires("task-fail", f"t{i}") for i in range(200)]
        assert fired == again
        assert 50 < sum(fired) < 150

    def test_seed_changes_decisions(self):
        a = ChaosPlan.parse("seed=1;task-fail:rate=0.5")
        b = ChaosPlan.parse("seed=2;task-fail:rate=0.5")
        assert [a.fires("task-fail", f"t{i}") for i in range(64)] != \
               [b.fires("task-fail", f"t{i}") for i in range(64)]

    def test_decisions_order_independent(self):
        plan = ChaosPlan.parse("seed=9;task-fail:rate=0.5")
        tokens = [f"t{i}" for i in range(64)]
        forward = {t: plan.fires("task-fail", t) for t in tokens}
        backward = {t: plan.fires("task-fail", t)
                    for t in reversed(tokens)}
        assert forward == backward

    def test_match_gates_on_token_substring(self):
        plan = ChaosPlan.parse("task-fail:match=gzip")
        assert plan.fires("task-fail", "sweep/gzip/p0")
        assert not plan.fires("task-fail", "sweep/twolf/p0")

    def test_attempts_gates_first_n_dispatches(self):
        plan = ChaosPlan.parse("task-fail:attempts=2")
        assert plan.fires("task-fail", "t", attempt=1)
        assert plan.fires("task-fail", "t", attempt=2)
        assert not plan.fires("task-fail", "t", attempt=3)


class TestSiteBehaviours:
    def test_inject_task_fail(self):
        plan = ChaosPlan.parse("task-fail:match=gzip")
        with pytest.raises(InjectedFaultError):
            plan.inject("u1", "gzip", 1)
        plan.inject("u1", "twolf", 1)  # no-op: match filters it out

    def test_inject_slow_call_sleeps_then_returns(self):
        plan = ChaosPlan.parse("slow-call:delay=0")
        plan.inject("u1", "gzip", 1)

    def test_maybe_io_error(self):
        plan = ChaosPlan.parse("io-error:match=cache_get")
        with pytest.raises(InjectedIOError) as err:
            plan.maybe_io_error("cache_get", "deadbeef")
        assert isinstance(err.value, OSError)
        plan.maybe_io_error("cache_put", "deadbeef")  # filtered

    def test_maybe_corrupt_artifact(self, tmp_path):
        path = tmp_path / "artifact.json"
        payload = b"x" * 100
        path.write_bytes(payload)
        ChaosPlan.parse("artifact-corrupt").maybe_corrupt_artifact(path)
        garbled = path.read_bytes()
        assert garbled != payload and len(garbled) < len(payload)

    def test_corrupt_no_fire_leaves_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_bytes(b"x" * 100)
        plan = ChaosPlan.parse("artifact-corrupt:match=other")
        plan.maybe_corrupt_artifact(path)
        assert path.read_bytes() == b"x" * 100

    def test_worker_kill_exit_code_is_distinctive(self):
        assert WORKER_KILL_EXIT_CODE == 87


class TestEnvArbitration:
    def test_no_env_means_no_plan(self):
        assert plan_from_env({}) is None

    def test_chaos_env_wins_over_legacy(self):
        env = {"REPRO_CHAOS": "worker-kill",
               "REPRO_FAULT_RATE": "1.0"}
        plan = plan_from_env(env)
        assert isinstance(plan, ChaosPlan)

    def test_legacy_env_still_honoured(self):
        env = {"REPRO_FAULT_RATE": "1.0"}
        plan = plan_from_env(env)
        assert isinstance(plan, FaultPlan)

    def test_malformed_chaos_spec_raises(self):
        with pytest.raises(ChaosSpecError):
            plan_from_env({"REPRO_CHAOS": "bogus-site"})

    def test_module_level_io_error_helper(self, monkeypatch):
        from repro import faults

        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        faults.maybe_io_error("save_profile", "p.json")  # no-op
        monkeypatch.setenv("REPRO_CHAOS", "io-error:match=save_profile")
        with pytest.raises(InjectedIOError):
            faults.maybe_io_error("save_profile", "p.json")


class TestLegacyShim:
    def test_runner_faults_import_is_same_class(self):
        from repro.faults.legacy import FaultPlan as canonical
        from repro.runner.faults import FaultPlan as shimmed

        assert shimmed is canonical

    def test_legacy_from_env_roundtrip(self):
        plan = FaultPlan.from_env({"REPRO_FAULT_RATE": "0.5",
                                   "REPRO_FAULT_SEED": "3"})
        assert plan is not None and plan.fail_rate == 0.5
