"""Tests for pipeline instruction sources (execution-driven and
pre-annotated)."""

import pytest

from repro.config import baseline_config
from repro.isa.iclass import IClass
from repro.branch.unit import BranchOutcome
from repro.cpu.source import (
    ExecutionDrivenSource,
    FetchSlot,
    PreannotatedSource,
    MAX_DEPENDENCY_DISTANCE,
)


class TestExecutionDrivenSource:
    def test_consumes_whole_trace(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config)
        count = 0
        while source.fetch() is not None:
            count += 1
        assert count == len(tiny_trace)

    def test_dependency_distances_match_registers(self, tiny_trace,
                                                  config):
        source = ExecutionDrivenSource(tiny_trace, config)
        # tiny program block 0: load r1; alu r2 <- r1; branch <- r2.
        # Within one block iteration the alu depends on the load one
        # instruction earlier and the branch on the alu one earlier.
        slots = [source.fetch() for _ in range(3)]
        assert slots[1].dep_distances == (1,)
        assert slots[2].dep_distances == (1,)

    def test_first_reads_have_no_producers(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config)
        first = source.fetch()  # load: src r4 never written
        assert first.dep_distances == ()

    def test_distance_capped(self, small_trace, config):
        source = ExecutionDrivenSource(small_trace, config)
        while True:
            slot = source.fetch()
            if slot is None:
                break
            for distance in slot.dep_distances:
                assert 0 < distance <= MAX_DEPENDENCY_DISTANCE

    def test_branches_classified(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config)
        outcomes = []
        while True:
            slot = source.fetch()
            if slot is None:
                break
            if slot.is_branch:
                outcomes.append(slot.outcome)
            else:
                assert slot.outcome is None
        assert outcomes
        assert all(isinstance(o, BranchOutcome) for o in outcomes)

    def test_perfect_branch_prediction(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config,
                                       perfect_branch_prediction=True)
        while True:
            slot = source.fetch()
            if slot is None:
                break
            if slot.is_branch:
                assert slot.outcome is BranchOutcome.CORRECT

    def test_perfect_caches_no_stalls(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config,
                                       perfect_caches=True)
        while True:
            slot = source.fetch()
            if slot is None:
                break
            assert slot.fetch_stall == 0
            assert not slot.il1_miss and not slot.dl1_miss
            if slot.is_load:
                assert slot.exec_latency == config.dl1.hit_latency

    def test_load_latency_follows_hierarchy(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config)
        latencies = set()
        while True:
            slot = source.fetch()
            if slot is None:
                break
            if slot.is_load:
                latencies.add(slot.exec_latency)
        valid = {config.dl1.hit_latency, config.l2.hit_latency,
                 config.memory_latency}
        extended = valid | {v + config.dtlb.miss_latency for v in valid}
        assert latencies <= extended

    def test_filler_slots_inert(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config)
        filler = source.peek_filler(0)
        assert filler.dep_distances == ()
        assert filler.outcome is None
        assert filler.fetch_stall == 0

    def test_peek_does_not_consume(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config)
        source.peek_filler(0)
        source.peek_filler(5)
        slot = source.fetch()
        assert slot.raw.seq == 0


class TestPreannotatedSource:
    def _slots(self, n=5):
        return [FetchSlot(IClass.INT_ALU, exec_latency=1)
                for _ in range(n)]

    def test_replays_in_order(self):
        slots = self._slots()
        source = PreannotatedSource(slots)
        assert [source.fetch() for _ in range(5)] == slots
        assert source.fetch() is None

    def test_len(self):
        assert len(PreannotatedSource(self._slots(3))) == 3

    def test_peek_filler_wraps(self):
        source = PreannotatedSource(self._slots(2))
        filler = source.peek_filler(7)
        assert filler.iclass is IClass.INT_ALU

    def test_on_dispatch_noop(self):
        source = PreannotatedSource(self._slots(1))
        source.on_dispatch(source.fetch())  # must not raise
