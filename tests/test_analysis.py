"""Tests for SFG analysis utilities."""

import pytest

from repro.core.analysis import (
    hottest_contexts,
    reduced_connectivity,
    to_networkx,
    transition_entropy,
)
from repro.core.profiler import profile_trace
from repro.core.reduction import reduce_flow_graph


@pytest.fixture
def profile(small_trace, config):
    return profile_trace(small_trace, config, order=1,
                         branch_mode="perfect", perfect_caches=True)


class TestToNetworkx:
    def test_nodes_match_contexts(self, profile):
        graph = to_networkx(profile.sfg)
        assert graph.number_of_nodes() == profile.num_nodes

    def test_edge_probabilities_normalized(self, profile):
        graph = to_networkx(profile.sfg)
        for node in graph.nodes:
            out = list(graph.out_edges(node, data=True))
            if out:
                total = sum(data["probability"] for _, _, data in out)
                # Successor contexts outside the graph are impossible in
                # the full SFG, so out-probabilities sum to 1.
                assert total == pytest.approx(1.0)

    def test_reduced_restriction(self, profile):
        reduced = reduce_flow_graph(profile.sfg, 8)
        graph = to_networkx(profile.sfg, reduced=reduced)
        assert set(graph.nodes) == set(reduced.occurrences)

    def test_node_attributes(self, profile):
        graph = to_networkx(profile.sfg)
        for context, data in graph.nodes(data=True):
            assert data["block"] == context[-1]
            assert data["occurrences"] >= 1


class TestEntropy:
    def test_deterministic_flow_has_zero_entropy(self, tiny_trace,
                                                 config):
        # The tiny loop at order 2 is almost fully determined; at order
        # 1 the loop branch adds uncertainty.
        low = profile_trace(tiny_trace, config, order=2,
                            branch_mode="perfect", perfect_caches=True)
        high = profile_trace(tiny_trace, config, order=0,
                             branch_mode="perfect", perfect_caches=True)
        assert transition_entropy(low.sfg) <= \
            transition_entropy(high.sfg) + 1e-9

    def test_entropy_nonnegative(self, profile):
        assert transition_entropy(profile.sfg) >= 0.0

    def test_empty_graph(self):
        from repro.core.sfg import StatisticalFlowGraph

        assert transition_entropy(StatisticalFlowGraph(1)) == 0.0


class TestReducedConnectivity:
    def test_unreduced_graph_is_connected(self, profile):
        reduced = reduce_flow_graph(profile.sfg, 1)
        stats = reduced_connectivity(profile.sfg, reduced)
        assert stats["largest_component_fraction"] == 1.0
        assert stats["components"] == 1

    def test_mass_dominates_even_when_fragmented(self, profile):
        # The paper: after reduction "the interconnection is still
        # strong enough" — the hot mass stays in one component.
        reduced = reduce_flow_graph(profile.sfg, 8)
        stats = reduced_connectivity(profile.sfg, reduced)
        assert stats["largest_component_mass"] > 0.5

    def test_empty_reduction(self, profile):
        reduced = reduce_flow_graph(profile.sfg, 10**9)
        stats = reduced_connectivity(profile.sfg, reduced)
        assert stats["components"] == 0


class TestHottestContexts:
    def test_ordering_and_shares(self, profile):
        ranked = hottest_contexts(profile.sfg, top=5)
        occurrences = [count for _, count, _ in ranked]
        assert occurrences == sorted(occurrences, reverse=True)
        for _, count, share in ranked:
            assert share == pytest.approx(
                count / profile.sfg.total_block_executions)
