"""Corpus round-trips, checksums, and the committed regression corpus.

``TestCommittedCorpus`` is the tier-1 wiring the issue asks for: every
entry under ``tests/fuzz_corpus/`` replays green on every test run, so
a pipeline change that re-introduces a pinned discrepancy fails the
suite immediately.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ArtifactCorruptError
from repro.frontend.functional import run_program
from repro.fuzz.corpus import (
    CorpusEntry,
    list_entries,
    load_entry,
    program_from_dict,
    program_to_dict,
    save_entry,
)
from repro.fuzz.generator import random_case
from repro.fuzz.harness import replay_corpus, replay_entry

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"


class TestProgramRoundTrip:
    @pytest.mark.parametrize("index", [0, 3, 8, 15])
    def test_functional_behaviour_preserved(self, index):
        program = random_case(seed=13, index=index).program()
        rebuilt = program_from_dict(program_to_dict(program))
        original = run_program(program, 600)
        replayed = run_program(rebuilt, 600)
        assert len(original) == len(replayed)
        for a, b in zip(original, replayed):
            assert (a.pc, a.iclass, a.taken, a.mem_addr) \
                == (b.pc, b.iclass, b.taken, b.mem_addr)

    def test_dict_round_trip_is_stable(self):
        program = random_case(seed=13, index=2).program()
        once = program_to_dict(program)
        twice = program_to_dict(program_from_dict(once))
        assert once == twice


class TestEntryIO:
    def _entry(self):
        case = random_case(seed=13, index=1)
        return CorpusEntry(
            case_id=case.case_id, kind="differential",
            case=case.to_dict(),
            report={"identical": False, "field_diffs": []},
            program=program_to_dict(case.program()),
            minimization={"original_size": 10, "minimized_size": 2,
                          "n_instructions": 400},
        )

    def test_save_load_round_trip(self, tmp_path):
        entry = self._entry()
        path = save_entry(str(tmp_path), entry)
        loaded = load_entry(path)
        assert loaded.to_dict() == entry.to_dict()
        assert list_entries(str(tmp_path)) == [path]

    def test_tampered_entry_rejected(self, tmp_path):
        path = save_entry(str(tmp_path), self._entry())
        payload = json.loads(Path(path).read_text())
        payload["case_id"] = "caseXXX"
        Path(path).write_text(json.dumps(payload))
        with pytest.raises(ArtifactCorruptError):
            load_entry(path)

    def test_unknown_schema_rejected(self, tmp_path):
        data = self._entry().to_dict()
        data["schema"] = 999
        with pytest.raises(Exception, match="schema"):
            CorpusEntry.from_dict(data)

    def test_empty_corpus_dir(self, tmp_path):
        assert list_entries(str(tmp_path / "missing")) == []
        assert replay_corpus(str(tmp_path / "missing")) == []


class TestCommittedCorpus:
    def test_corpus_is_present(self):
        assert list_entries(str(CORPUS_DIR)), \
            "the seeded regression corpus must ship with the tests"

    def test_every_committed_entry_replays_green(self):
        results = replay_corpus(str(CORPUS_DIR), raise_on_failure=True)
        assert results
        for result in results:
            assert result.passed, \
                f"{result.case_id} regressed: {result.detail}"

    def test_committed_entries_are_minimized_skew_canaries(self):
        """Differential entries pin injected skews (and are minimized);
        vector entries pin the columnar generator's statistical health
        on a healthy case, so they carry no injected defect."""
        for path in list_entries(str(CORPUS_DIR)):
            entry = load_entry(path)
            if entry.kind == "vector":
                assert not entry.skew_injected
                continue
            assert entry.skew_injected, \
                "committed entries document their injected origin"
            minimization = entry.minimization
            assert (minimization["minimized_size"]
                    <= minimization["original_size"] // 4)
