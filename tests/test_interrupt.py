"""Ctrl-C handling: partial sweep results, quarantine manifest, and
the distinct exit status — no raw tracebacks."""

from types import SimpleNamespace

import pytest

from repro import cli
from repro.config import baseline_config
from repro.core.profiler import profile_trace
from repro.errors import SweepInterrupted
from repro.frontend.functional import run_program
from repro.workloads.generator import WorkloadConfig, generate_program
from repro.dse.cache import ResultCache
from repro.dse.engine import SweepEngine
from repro.dse.space import SweepSpec


@pytest.fixture(scope="module")
def profile():
    program = generate_program(WorkloadConfig(
        name="unit", seed=7, n_blocks=12, mean_block_size=4,
        working_set_kb=32, n_memory_streams=4))
    trace = run_program(program, n_instructions=1200)
    return profile_trace(trace, baseline_config(), order=1)


@pytest.fixture(scope="module")
def points():
    spec = SweepSpec(mode="grid", parameters=(
        ("ruu_size", (32, 64)), ("width", (2, 4))))
    return spec.expand()


class TestEngineInterrupt:
    def test_immediate_interrupt_reports_everything_unstarted(
            self, profile, points, monkeypatch):
        def interrupted(self, tasks):
            raise KeyboardInterrupt()

        monkeypatch.setattr(SweepEngine, "_run_serial", interrupted)
        sweep = SweepEngine(profile, jobs=1).evaluate(
            points, seeds=(0, 1), reduction_factor=4.0)
        assert sweep.interrupted
        assert sweep.unstarted == len(points) * 2
        assert sweep.evaluated == 0
        assert "INTERRUPTED" in sweep.summary()

    def test_partial_results_survive_interrupt(self, profile, points,
                                               monkeypatch, tmp_path):
        real_run = SweepEngine._run_serial

        def finish_one_then_interrupt(self, tasks):
            raise SweepInterrupted(real_run(self, tasks[:1]))

        monkeypatch.setattr(SweepEngine, "_run_serial",
                            finish_one_then_interrupt)
        cache = ResultCache(tmp_path / "cache", fault_plan=None)
        sweep = SweepEngine(profile, jobs=1, cache=cache).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert sweep.interrupted
        assert sweep.evaluated == 1
        assert sweep.unstarted == len(points) - 1
        finished = [r for r in sweep.results if r.per_seed]
        assert len(finished) == 1
        # The finished evaluation went into the cache: an interrupted
        # sweep is resumable, not wasted.
        assert cache.stats.writes == 1

    def test_interrupt_still_writes_quarantine_manifest(
            self, profile, points, monkeypatch, tmp_path):
        def interrupted(self, tasks):
            raise KeyboardInterrupt()

        monkeypatch.setattr(SweepEngine, "_run_serial", interrupted)
        manifest = tmp_path / "quarantine.json"
        sweep = SweepEngine(profile, jobs=1,
                            quarantine_path=manifest).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert sweep.interrupted
        assert manifest.exists()

    def test_resume_after_interrupt_skips_finished_work(
            self, profile, points, monkeypatch, tmp_path):
        real_run = SweepEngine._run_serial

        def finish_one_then_interrupt(self, tasks):
            raise SweepInterrupted(real_run(self, tasks[:1]))

        monkeypatch.setattr(SweepEngine, "_run_serial",
                            finish_one_then_interrupt)
        cache_dir = tmp_path / "cache"
        SweepEngine(profile, jobs=1,
                    cache=ResultCache(cache_dir,
                                      fault_plan=None)).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        monkeypatch.setattr(SweepEngine, "_run_serial", real_run)
        resumed = SweepEngine(
            profile, jobs=1,
            cache=ResultCache(cache_dir, fault_plan=None)).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert not resumed.interrupted
        assert resumed.cached == 1
        assert resumed.evaluated == len(points) - 1


class TestCliInterrupt:
    def test_exit_status_is_130(self):
        assert cli.EXIT_INTERRUPTED == 130

    def test_main_converts_interrupt_to_status(self, monkeypatch,
                                               capsys):
        def interrupted():
            raise KeyboardInterrupt()

        monkeypatch.setattr(cli, "_cmd_benchmarks", interrupted)
        status = cli.main(["benchmarks"])
        assert status == cli.EXIT_INTERRUPTED
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "interrupted" in captured.err

    def test_dse_interrupt_prints_partial_report(self, monkeypatch,
                                                 capsys):
        import repro.dse as dse

        fake_study = SimpleNamespace(
            sweep=SimpleNamespace(interrupted=True, unstarted=3),
            render=lambda margin: "PARTIAL REPORT",
        )
        monkeypatch.setattr(dse, "run_study",
                            lambda *args, **kwargs: fake_study)
        status = cli.main(["dse", "--benchmark", "gzip"])
        captured = capsys.readouterr()
        assert status == cli.EXIT_INTERRUPTED
        assert "PARTIAL REPORT" in captured.out
        assert "never started" in captured.err
        assert "Traceback" not in captured.err
