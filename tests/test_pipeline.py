"""Tests for the out-of-order pipeline's cycle model.

Hand-built slot sequences make latency and bandwidth effects exactly
predictable; generated workloads check conservation laws end to end.
"""

import pytest

from repro.config import MachineConfig, baseline_config
from repro.isa.iclass import IClass
from repro.branch.unit import BranchOutcome
from repro.cpu.pipeline import simulate
from repro.cpu.source import (
    ExecutionDrivenSource,
    FetchSlot,
    PreannotatedSource,
)


def _alu(**kwargs):
    return FetchSlot(IClass.INT_ALU, exec_latency=1, **kwargs)


def _load(latency=2, **kwargs):
    return FetchSlot(IClass.LOAD, exec_latency=latency, **kwargs)


def _branch(outcome=BranchOutcome.CORRECT, taken=False):
    return FetchSlot(IClass.INT_COND_BRANCH, exec_latency=1,
                     outcome=outcome, taken=taken)


def _run(slots, **config_kwargs):
    config = baseline_config()
    if config_kwargs:
        from dataclasses import replace
        config = replace(config, **config_kwargs)
    return simulate(config, PreannotatedSource(slots))


class TestConservation:
    def test_all_instructions_commit(self):
        result = _run([_alu() for _ in range(100)])
        assert result.instructions == 100

    def test_empty_source(self):
        result = _run([])
        assert result.instructions == 0

    def test_single_instruction(self):
        result = _run([_alu()])
        assert result.instructions == 1
        assert result.cycles >= 1

    def test_eds_commits_whole_trace(self, tiny_trace, config):
        source = ExecutionDrivenSource(tiny_trace, config)
        result = simulate(config, source)
        assert result.instructions == len(tiny_trace)

    def test_commits_bounded_by_width(self):
        result = _run([_alu() for _ in range(80)], commit_width=2)
        # 80 instructions at <= 2 per cycle need >= 40 cycles.
        assert result.cycles >= 40


class TestIlpAndDependencies:
    def test_independent_instructions_reach_high_ipc(self):
        result = _run([_alu() for _ in range(2000)])
        assert result.ipc > 4.0

    def test_serial_chain_limits_ipc(self):
        chain = [_alu(dep_distances=(1,)) for _ in range(400)]
        result = _run(chain)
        # Each instruction waits for its predecessor: ~1 IPC ceiling.
        assert result.ipc <= 1.2

    def test_long_latency_serial_chain(self):
        chain = [_load(latency=20, dep_distances=(1,))
                 for _ in range(100)]
        result = _run(chain)
        assert result.cycles >= 100 * 20

    def test_dependency_beyond_history_ignored(self):
        slots = [_alu(dep_distances=(600,)) for _ in range(100)]
        result = _run(slots)
        assert result.ipc > 3.0  # distance > 512 never blocks

    def test_narrow_width_halves_throughput(self):
        wide = _run([_alu() for _ in range(1000)])
        narrow = _run([_alu() for _ in range(1000)],
                      decode_width=2, issue_width=2, commit_width=2)
        assert narrow.cycles > wide.cycles * 1.8


class TestFunctionalUnits:
    def test_divider_contention(self):
        divs = [FetchSlot(IClass.INT_DIV, exec_latency=20)
                for _ in range(40)]
        result = _run(divs)
        # 2 mult/div units, fully pipelined: >= 40/2... issue port bound
        # means at most 2 divides start per cycle.
        assert result.activity["int_mult_div"] == 40
        assert result.cycles >= 20

    def test_fu_activity_recorded(self):
        slots = [_alu(), _load(),
                 FetchSlot(IClass.FP_MULT, exec_latency=4)]
        result = _run(slots)
        assert result.activity["int_alu"] == 1
        assert result.activity["load_store"] == 1
        assert result.activity["fp_mult_div"] == 1


class TestBranches:
    def test_misprediction_costs_cycles(self):
        correct = []
        mispredicted = []
        for _ in range(50):
            correct.extend([_alu() for _ in range(9)] + [_branch()])
            mispredicted.extend(
                [_alu() for _ in range(9)]
                + [_branch(outcome=BranchOutcome.MISPREDICTION)])
        fast = _run(correct)
        slow = _run(mispredicted)
        assert slow.cycles > fast.cycles + 50 * 10
        assert slow.branch_mispredictions == 50
        assert slow.squashed_instructions > 0

    def test_fetch_redirection_cheaper_than_misprediction(self):
        def stream(outcome):
            slots = []
            for _ in range(50):
                slots.extend([_alu() for _ in range(9)])
                slots.append(_branch(outcome=outcome, taken=True))
            return slots

        redirect = _run(stream(BranchOutcome.FETCH_REDIRECTION))
        mispredict = _run(stream(BranchOutcome.MISPREDICTION))
        correct = _run(stream(BranchOutcome.CORRECT))
        assert correct.cycles <= redirect.cycles <= mispredict.cycles
        assert redirect.fetch_redirections == 50

    def test_taken_branches_limit_fetch(self):
        # One taken branch per 2 instructions caps the fetch group.
        taken = []
        for _ in range(200):
            taken.append(_alu())
            taken.append(_branch(taken=True))
        not_taken = []
        for _ in range(200):
            not_taken.append(_alu())
            not_taken.append(_branch(taken=False))
        assert _run(taken).cycles > _run(not_taken).cycles

    def test_branch_counters(self):
        slots = [_branch(taken=True),
                 _branch(outcome=BranchOutcome.MISPREDICTION),
                 _branch(outcome=BranchOutcome.FETCH_REDIRECTION,
                         taken=True)]
        result = _run(slots)
        assert result.branches == 3
        assert result.taken_branches == 2
        assert result.branch_mispredictions == 1
        assert result.fetch_redirections == 1


class TestFetchStalls:
    def test_icache_stall_slows_fetch(self):
        stalled = [_alu(fetch_stall=10) for _ in range(100)]
        result = _run(stalled)
        assert result.cycles >= 100 * 10

    def test_no_stall_baseline(self):
        result = _run([_alu() for _ in range(100)])
        assert result.cycles < 100


class TestOccupancies:
    def test_occupancies_bounded(self, small_trace, config):
        result = simulate(config, ExecutionDrivenSource(small_trace,
                                                        config))
        assert 0 <= result.avg_ruu_occupancy <= config.ruu_size
        assert 0 <= result.avg_lsq_occupancy <= config.lsq_size
        assert 0 <= result.avg_ifq_occupancy <= config.ifq_size

    def test_memory_bound_fills_window(self):
        # A long-latency serial load chain keeps the RUU occupied.
        chain = [_load(latency=150, dep_distances=(1,))
                 for _ in range(100)]
        result = _run(chain)
        assert result.avg_ruu_occupancy > 10

    def test_lsq_pressure(self):
        loads = [_load() for _ in range(500)]
        result = _run(loads, lsq_size=4)
        alus = _run([_alu() for _ in range(500)], lsq_size=4)
        assert result.avg_lsq_occupancy > 0
        assert result.cycles >= alus.cycles


class TestSafety:
    def test_max_cycles_guard(self):
        # An absurd stall forces the guard to trigger.
        slots = [_alu(fetch_stall=10_000)]
        config = baseline_config()
        with pytest.raises(RuntimeError):
            simulate(config, PreannotatedSource(slots), max_cycles=100)

    def test_wrong_path_instructions_never_commit(self):
        slots = []
        for _ in range(20):
            slots.extend([_alu() for _ in range(5)])
            slots.append(_branch(outcome=BranchOutcome.MISPREDICTION))
        result = _run(slots)
        assert result.instructions == len(slots)
