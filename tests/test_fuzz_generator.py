"""Fuzz-case generation: determinism, validity, round-trips."""

import pytest

from repro.errors import WorkloadSpecError
from repro.frontend.functional import run_program
from repro.fuzz.generator import (
    FuzzCase,
    case_from_dict,
    generate_cases,
    random_case,
)
from repro.isa.iclass import IClass
from repro.workloads.generator import WorkloadConfig, generate_program


class TestDeterminism:
    def test_same_seed_same_case(self):
        for index in range(10):
            assert (random_case(7, index).to_dict()
                    == random_case(7, index).to_dict())

    def test_different_indices_differ(self):
        dicts = [random_case(7, i).to_dict() for i in range(8)]
        workloads = [d["workload"] for d in dicts]
        assert any(w != workloads[0] for w in workloads[1:])

    def test_different_seeds_differ(self):
        assert (random_case(1, 0).to_dict()["workload"]
                != random_case(2, 0).to_dict()["workload"])


class TestValidity:
    def test_many_cases_generate_valid_programs(self):
        for case in generate_cases(seed=3, count=30):
            program = case.program()
            program.validate_reachability()
            config = case.machine_config()
            assert config.ruu_size >= 1
            assert program.num_blocks == case.workload.n_blocks

    def test_cases_run_through_functional_frontend(self):
        for case in generate_cases(seed=5, count=6):
            trace = run_program(case.program(), 500, warmup=case.warmup)
            assert len(trace) >= 500

    def test_round_trip(self):
        for index in range(12):
            case = random_case(9, index)
            rebuilt = case_from_dict(case.to_dict())
            assert rebuilt.to_dict() == case.to_dict()
            assert isinstance(rebuilt, FuzzCase)
            assert rebuilt.workload.instruction_mix \
                == case.workload.instruction_mix


class TestWorkloadEdgeCases:
    """The generator edge cases the fuzz sweeps rely on (issue fix)."""

    def test_single_block_program_is_valid(self):
        config = WorkloadConfig(name="one", seed=1, n_blocks=1,
                                mean_block_size=3)
        program = generate_program(config)
        assert program.num_blocks == 1
        trace = run_program(program, 200)
        assert len(trace) >= 200

    def test_two_block_program_is_valid(self):
        config = WorkloadConfig(name="two", seed=2, n_blocks=2,
                                mean_block_size=2)
        program = generate_program(config)
        assert program.num_blocks == 2
        run_program(program, 200)

    def test_zero_probability_classes_never_emitted(self):
        mix = {IClass.INT_ALU: 1.0, IClass.LOAD: 0.0,
               IClass.STORE: 0.0, IClass.FP_DIV: 0.0}
        config = WorkloadConfig(name="onehot", seed=3, n_blocks=4,
                                mean_block_size=6, instruction_mix=mix,
                                n_memory_streams=0)
        program = generate_program(config)
        body_classes = {
            inst.iclass
            for block in program.blocks
            for inst in block.instructions[:-1]
        }
        assert body_classes <= {IClass.INT_ALU}

    def test_zero_blocks_rejected(self):
        with pytest.raises(WorkloadSpecError, match="n_blocks"):
            WorkloadConfig(name="none", seed=1, n_blocks=0)

    def test_zero_mass_mix_rejected(self):
        with pytest.raises(WorkloadSpecError, match="positive"):
            WorkloadConfig(name="empty", seed=1, n_blocks=2,
                           instruction_mix={IClass.INT_ALU: 0.0})

    def test_negative_mix_weight_rejected(self):
        with pytest.raises(WorkloadSpecError, match="negative"):
            WorkloadConfig(name="neg", seed=1, n_blocks=2,
                           instruction_mix={IClass.INT_ALU: -1.0})

    def test_branch_class_in_mix_rejected(self):
        with pytest.raises(WorkloadSpecError, match="branch"):
            WorkloadConfig(
                name="br", seed=1, n_blocks=2,
                instruction_mix={IClass.INT_COND_BRANCH: 1.0})

    def test_memory_mix_without_streams_rejected(self):
        with pytest.raises(WorkloadSpecError, match="memory"):
            WorkloadConfig(name="nostreams", seed=1, n_blocks=2,
                           instruction_mix={IClass.LOAD: 1.0},
                           n_memory_streams=0)

    def test_loop_plus_pattern_over_one_rejected(self):
        with pytest.raises(WorkloadSpecError, match="fraction"):
            WorkloadConfig(name="frac", seed=1, n_blocks=2,
                           loop_fraction=0.8, pattern_fraction=0.4)
