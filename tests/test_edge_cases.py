"""Cross-module edge cases: tiny inputs, degenerate configurations and
empty artifacts must not crash or hang."""

from dataclasses import replace

import pytest

from repro.config import MachineConfig, baseline_config
from repro.isa.iclass import IClass
from repro.isa.instruction import StaticInstruction
from repro.isa.program import BasicBlock, Program
from repro.frontend.functional import run_program
from repro.core.framework import (
    run_execution_driven,
    run_statistical_simulation,
    simulate_synthetic_trace,
)
from repro.core.profiler import profile_trace
from repro.core.reduction import reduce_flow_graph
from repro.core.synthesis import generate_synthetic_trace
from repro.core.synthetic import SyntheticTrace
from repro.workloads.behaviors import PatternBehavior


def _one_block_program():
    block = BasicBlock(
        bb_id=0, address=0x1000,
        instructions=[
            StaticInstruction(IClass.INT_ALU, src_regs=(0,), dst_reg=1),
            StaticInstruction(IClass.INT_COND_BRANCH, src_regs=(1,)),
        ],
        taken_target=0, fallthrough=0, branch_behavior=0)
    return Program(name="one-block", blocks=[block], entry=0,
                   branch_behaviors=[PatternBehavior("T")],
                   memory_streams=[])


class TestTinyInputs:
    def test_single_block_program_end_to_end(self, config):
        trace = run_program(_one_block_program(), n_instructions=400)
        reference, _ = run_execution_driven(trace, config)
        report = run_statistical_simulation(trace, config,
                                            reduction_factor=2, seed=0)
        assert reference.instructions == 400
        assert report.ipc > 0

    def test_trace_shorter_than_one_block(self, tiny_program, config):
        trace = run_program(tiny_program, n_instructions=2)
        profile = profile_trace(trace, config, order=1)
        # No block completed: the profile is empty but valid.
        assert profile.num_nodes == 0
        profile.sfg.validate()

    def test_synthesis_from_empty_reduction(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        synthetic = generate_synthetic_trace(profile, 10**9, seed=0)
        assert len(synthetic) == 0

    def test_simulating_empty_synthetic_trace(self, config):
        empty = SyntheticTrace(name="empty", instructions=[], order=1,
                               reduction_factor=1)
        result, power = simulate_synthetic_trace(empty, config)
        assert result.instructions == 0
        assert power.total > 0  # idle power remains

    def test_one_instruction_trace_eds(self, tiny_program, config):
        trace = run_program(tiny_program, n_instructions=1)
        result, _ = run_execution_driven(trace, config)
        assert result.instructions == 1


class TestDegenerateConfigs:
    def test_single_wide_machine(self, tiny_trace):
        config = MachineConfig(decode_width=1, issue_width=1,
                               commit_width=1, fetch_speed=1,
                               ruu_size=4, lsq_size=2, ifq_size=2)
        result, _ = run_execution_driven(tiny_trace, config)
        assert result.instructions == len(tiny_trace)
        assert result.ipc <= 1.0 + 1e-9

    def test_minimal_window(self, tiny_trace):
        config = baseline_config().with_window(ruu_size=2, lsq_size=2)
        result, _ = run_execution_driven(tiny_trace, config)
        assert result.instructions == len(tiny_trace)

    def test_tiny_ifq(self, tiny_trace):
        result, _ = run_execution_driven(tiny_trace,
                                         baseline_config().with_ifq(1))
        assert result.instructions == len(tiny_trace)

    def test_zero_frontend_depth(self, tiny_trace):
        config = replace(baseline_config(), frontend_depth=0)
        result, _ = run_execution_driven(tiny_trace, config)
        assert result.instructions == len(tiny_trace)

    def test_tiny_predictor_tables(self, tiny_trace):
        config = baseline_config().with_predictor_scale(0.001)
        result, _ = run_execution_driven(tiny_trace, config)
        assert result.instructions == len(tiny_trace)

    def test_tiny_caches(self, small_trace):
        config = baseline_config().with_cache_scale(0.01)
        result, _ = run_execution_driven(small_trace, config)
        assert result.instructions == len(small_trace)

    def test_everything_degenerate_at_once(self, tiny_trace):
        config = MachineConfig(decode_width=1, issue_width=1,
                               commit_width=1, fetch_speed=1,
                               ruu_size=2, lsq_size=2, ifq_size=1,
                               in_order_issue=True,
                               conservative_loads=True,
                               enforce_anti_dependencies=True)
        result, _ = run_execution_driven(tiny_trace, config)
        assert result.instructions == len(tiny_trace)


class TestHighOrders:
    def test_order_larger_than_distinct_history(self, tiny_trace,
                                                config):
        profile = profile_trace(tiny_trace, config, order=6,
                                branch_mode="perfect",
                                perfect_caches=True)
        profile.sfg.validate()
        synthetic = generate_synthetic_trace(profile, 2, seed=0)
        result, _ = simulate_synthetic_trace(synthetic, config)
        assert result.instructions == len(synthetic)

    def test_reduction_factor_between_one_and_two(self, tiny_trace,
                                                  config):
        profile = profile_trace(tiny_trace, config, order=1)
        reduced = reduce_flow_graph(profile.sfg, 1.5)
        for context, budget in reduced.occurrences.items():
            assert budget == int(
                profile.sfg.contexts[context].occurrences // 1.5)
