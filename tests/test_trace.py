"""Tests for trace containers and interval utilities."""

import pytest

from repro.frontend.trace import Trace, concat_traces, split_intervals
from repro.isa.iclass import IClass


class TestTrace:
    def test_len_iter_getitem(self, tiny_trace):
        assert len(tiny_trace) == 600
        assert tiny_trace[0].seq == 0
        assert sum(1 for _ in tiny_trace) == 600

    def test_instruction_mix_sums_to_one(self, small_trace):
        mix = small_trace.instruction_mix()
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_counts(self, tiny_trace):
        # Tiny program: block0 has 1 load of 3 instructions; block1 none.
        assert tiny_trace.num_loads > 0
        assert tiny_trace.num_branches == \
            len(tiny_trace.basic_block_sequence())

    def test_basic_block_counts(self, tiny_trace):
        counts = tiny_trace.basic_block_counts()
        # The loop body dominates.
        assert counts[0] > counts[1] > 0


class TestSplitIntervals:
    def test_even_split(self, tiny_trace):
        pieces = split_intervals(tiny_trace, 100)
        assert len(pieces) == 6
        assert all(len(piece) == 100 for piece in pieces)

    def test_partial_tail_dropped(self, tiny_trace):
        pieces = split_intervals(tiny_trace, 250)
        assert len(pieces) == 2

    def test_interval_longer_than_trace(self, tiny_trace):
        assert split_intervals(tiny_trace, 10_000) == []

    def test_rejects_nonpositive(self, tiny_trace):
        with pytest.raises(ValueError):
            split_intervals(tiny_trace, 0)

    def test_pieces_cover_prefix(self, tiny_trace):
        pieces = split_intervals(tiny_trace, 200)
        flattened = [inst for piece in pieces for inst in piece]
        assert flattened == tiny_trace.instructions[:600]


class TestConcat:
    def test_concat_renumbers(self, tiny_trace):
        pieces = split_intervals(tiny_trace, 200)
        merged = concat_traces("merged", pieces)
        assert [inst.seq for inst in merged] == list(range(600))
        assert merged.name == "merged"
