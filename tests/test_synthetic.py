"""Tests for synthetic instruction/trace containers and slot
conversion."""

import pytest

from repro.config import baseline_config
from repro.isa.iclass import IClass, execution_latency
from repro.branch.unit import BranchOutcome
from repro.core.synthetic import SyntheticInstruction, SyntheticTrace


def _trace(instructions):
    return SyntheticTrace(name="t", instructions=instructions, order=1,
                          reduction_factor=10)


class TestSyntheticInstruction:
    def test_flags(self):
        inst = SyntheticInstruction(IClass.LOAD, dl1_miss=True)
        assert inst.is_load
        assert inst.produces_register
        assert not inst.is_branch

    def test_store_produces_nothing(self):
        assert not SyntheticInstruction(IClass.STORE).produces_register

    def test_branch_produces_nothing(self):
        inst = SyntheticInstruction(IClass.INT_COND_BRANCH,
                                    outcome=BranchOutcome.CORRECT)
        assert inst.is_branch
        assert not inst.produces_register


class TestToFetchSlots:
    def test_load_latency_mapping(self):
        config = baseline_config()
        cases = [
            (SyntheticInstruction(IClass.LOAD), config.dl1.hit_latency),
            (SyntheticInstruction(IClass.LOAD, dl1_miss=True),
             config.l2.hit_latency),
            (SyntheticInstruction(IClass.LOAD, dl1_miss=True,
                                  l2d_miss=True), config.memory_latency),
            (SyntheticInstruction(IClass.LOAD, dtlb_miss=True),
             config.dl1.hit_latency + config.dtlb.miss_latency),
        ]
        slots = _trace([c[0] for c in cases]).to_fetch_slots(config)
        for slot, (_, expected) in zip(slots, cases):
            assert slot.exec_latency == expected

    def test_fetch_stall_mapping(self):
        config = baseline_config()
        cases = [
            (SyntheticInstruction(IClass.INT_ALU), 0),
            (SyntheticInstruction(IClass.INT_ALU, il1_miss=True),
             config.l2.hit_latency),
            (SyntheticInstruction(IClass.INT_ALU, il1_miss=True,
                                  l2i_miss=True), config.memory_latency),
            (SyntheticInstruction(IClass.INT_ALU, itlb_miss=True),
             config.itlb.miss_latency),
        ]
        slots = _trace([c[0] for c in cases]).to_fetch_slots(config)
        for slot, (_, expected) in zip(slots, cases):
            assert slot.fetch_stall == expected

    def test_non_load_latency_is_class_latency(self):
        config = baseline_config()
        inst = SyntheticInstruction(IClass.FP_DIV)
        slot = _trace([inst]).to_fetch_slots(config)[0]
        assert slot.exec_latency == execution_latency(IClass.FP_DIV)

    def test_branch_annotations_forwarded(self):
        config = baseline_config()
        inst = SyntheticInstruction(IClass.INT_COND_BRANCH, taken=True,
                                    outcome=BranchOutcome.MISPREDICTION)
        slot = _trace([inst]).to_fetch_slots(config)[0]
        assert slot.taken is True
        assert slot.outcome is BranchOutcome.MISPREDICTION

    def test_dep_distances_forwarded(self):
        config = baseline_config()
        inst = SyntheticInstruction(IClass.INT_ALU, dep_distances=(3, 7))
        slot = _trace([inst]).to_fetch_slots(config)[0]
        assert slot.dep_distances == (3, 7)


class TestSummary:
    def test_summary_rates(self):
        instructions = [
            SyntheticInstruction(IClass.LOAD, dl1_miss=True),
            SyntheticInstruction(IClass.LOAD),
            SyntheticInstruction(IClass.INT_ALU),
            SyntheticInstruction(IClass.INT_COND_BRANCH,
                                 outcome=BranchOutcome.MISPREDICTION),
        ]
        summary = _trace(instructions).summary()
        assert summary["instructions"] == 4
        assert summary["load_fraction"] == pytest.approx(0.5)
        assert summary["dl1_miss_rate"] == pytest.approx(0.5)
        assert summary["misprediction_rate"] == pytest.approx(1.0)

    def test_container_protocol(self):
        trace = _trace([SyntheticInstruction(IClass.INT_ALU)])
        assert len(trace) == 1
        assert trace[0].iclass is IClass.INT_ALU
        assert [i.iclass for i in trace] == [IClass.INT_ALU]
