"""Sweep engine: determinism, parallel dispatch, caching, containment,
and the analysis layer on top."""

import pytest

from repro.config import baseline_config
from repro.runner import RunnerPolicy
from repro.runner.faults import FaultPlan
from repro.frontend.functional import run_program
from repro.core.profiler import profile_trace
from repro.workloads.generator import WorkloadConfig, generate_program
from repro.dse.analysis import pareto_front, verification_shortlist
from repro.dse.cache import ResultCache
from repro.dse.engine import (
    PointResult,
    SweepEngine,
    derive_point_seed,
)
from repro.dse.space import DesignPoint, SweepSpec


@pytest.fixture(scope="module")
def profile():
    program = generate_program(WorkloadConfig(
        name="unit", seed=7, n_blocks=12, mean_block_size=4,
        working_set_kb=32, n_memory_streams=4))
    trace = run_program(program, n_instructions=1200)
    return profile_trace(trace, baseline_config(), order=1)


@pytest.fixture(scope="module")
def points():
    spec = SweepSpec(mode="grid", parameters=(
        ("ruu_size", (32, 64)), ("width", (2, 4))))
    return spec.expand()


def metrics_map(sweep):
    return {r.point.point_id: r.per_seed for r in sweep.results}


class TestDerivedSeeds:
    def test_stable_hash_not_rng_state(self):
        seed = derive_point_seed("sec46", "gzip", "c" * 64, 0)
        assert seed == derive_point_seed("sec46", "gzip", "c" * 64, 0)
        assert 0 <= seed < 2 ** 63

    def test_every_identity_component_matters(self):
        base = derive_point_seed("sec46", "gzip", "c" * 64, 0)
        assert base != derive_point_seed("sec46", "gzip", "c" * 64, 1)
        assert base != derive_point_seed("sec46", "gzip", "d" * 64, 0)
        assert base != derive_point_seed("sec46", "twolf", "c" * 64, 0)
        assert base != derive_point_seed("table4", "gzip", "c" * 64, 0)


class TestDeterminism:
    def test_serial_and_parallel_sweeps_identical(self, profile, points):
        serial = SweepEngine(profile, jobs=1, experiment="t",
                             benchmark="unit").evaluate(
            points, seeds=(0, 1), reduction_factor=4.0)
        parallel = SweepEngine(profile, jobs=4, experiment="t",
                               benchmark="unit").evaluate(
            points, seeds=(0, 1), reduction_factor=4.0)
        assert serial.failed == 0 and parallel.failed == 0
        assert metrics_map(serial) == metrics_map(parallel)

    def test_repeated_serial_sweeps_identical(self, profile, points):
        first = SweepEngine(profile, jobs=1).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        second = SweepEngine(profile, jobs=1).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert metrics_map(first) == metrics_map(second)


class TestCaching:
    def test_warm_rerun_skips_every_point(self, profile, points,
                                          tmp_path):
        def engine():
            return SweepEngine(profile, jobs=1,
                               cache=ResultCache(tmp_path),
                               experiment="t", benchmark="unit")

        cold = engine().evaluate(points, seeds=(0, 1),
                                 reduction_factor=4.0)
        warm = engine().evaluate(points, seeds=(0, 1),
                                 reduction_factor=4.0)
        assert cold.evaluated == len(points) * 2 and cold.cached == 0
        assert warm.evaluated == 0
        assert warm.cached / warm.total_tasks >= 0.9
        assert metrics_map(cold) == metrics_map(warm)

    def test_overlapping_sweep_shares_entries(self, profile, tmp_path):
        wide = SweepSpec(mode="grid", parameters=(
            ("ruu_size", (32, 64, 128)),)).expand()
        narrow = SweepSpec(mode="grid", parameters=(
            ("ruu_size", (32, 64)),)).expand()
        SweepEngine(profile, cache=ResultCache(tmp_path)).evaluate(
            narrow, seeds=(0,), reduction_factor=4.0)
        second = SweepEngine(profile,
                             cache=ResultCache(tmp_path)).evaluate(
            wide, seeds=(0,), reduction_factor=4.0)
        assert second.cached == 2 and second.evaluated == 1

    def test_corrupt_entry_is_reevaluated_identically(
            self, profile, points, tmp_path):
        cold = SweepEngine(profile, cache=ResultCache(tmp_path),
                           experiment="t", benchmark="unit").evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        victim = next((tmp_path / "objects").glob("*/*.json"))
        victim.write_text("{garbage")
        cache = ResultCache(tmp_path)
        warm = SweepEngine(profile, cache=cache, experiment="t",
                           benchmark="unit").evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert cache.stats.corrupt_discarded == 1
        assert warm.evaluated == 1
        assert warm.cached == len(points) - 1
        assert metrics_map(cold) == metrics_map(warm)

    def test_injected_cache_corruption_heals(self, profile, points,
                                             tmp_path, monkeypatch):
        # REPRO_FAULT_CACHE_RATE garbles every fresh write; the next
        # run must detect, discard and re-evaluate every entry.
        monkeypatch.setenv("REPRO_FAULT_CACHE_RATE", "1.0")
        corrupting = ResultCache(tmp_path,
                                 fault_plan=FaultPlan.from_env())
        SweepEngine(profile, cache=corrupting, fault_plan=None).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        monkeypatch.delenv("REPRO_FAULT_CACHE_RATE")
        cache = ResultCache(tmp_path)
        healed = SweepEngine(profile, cache=cache).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert cache.stats.corrupt_discarded == len(points)
        assert healed.evaluated == len(points)
        assert all(r.ok for r in healed.results)

    def test_failures_are_never_cached(self, profile, points, tmp_path):
        plan = FaultPlan(fail_benchmarks=("unit",))
        cache = ResultCache(tmp_path)
        sweep = SweepEngine(profile, cache=cache, fault_plan=plan,
                            benchmark="unit",
                            policy=RunnerPolicy(max_retries=0)
                            ).evaluate(points, seeds=(0,),
                                       reduction_factor=4.0)
        assert sweep.failed == len(points)
        assert cache.stats.writes == 0


class TestContainment:
    def test_permanent_fault_contained_per_point(self, profile, points):
        plan = FaultPlan(fail_benchmarks=("unit",))
        sweep = SweepEngine(profile, fault_plan=plan, benchmark="unit",
                            policy=RunnerPolicy(max_retries=0)
                            ).evaluate(points, seeds=(0,),
                                       reduction_factor=4.0)
        assert sweep.ok_results == []
        assert all(r.failed_seeds == 1 and r.errors for r in
                   sweep.results)

    def test_transient_fault_survived_by_retry(self, profile, points):
        plan = FaultPlan(fail_benchmarks=("unit",), fail_attempts=1)
        sweep = SweepEngine(
            profile, fault_plan=plan, benchmark="unit",
            policy=RunnerPolicy(max_retries=2, backoff_base=0.0)
        ).evaluate(points, seeds=(0,), reduction_factor=4.0)
        assert sweep.failed == 0
        assert all(r.ok for r in sweep.results)

    def test_parallel_workers_inject_from_env(self, profile, points,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BENCHMARKS", "unit")
        sweep = SweepEngine(profile, jobs=2, fault_plan=None,
                            benchmark="unit",
                            policy=RunnerPolicy(max_retries=0)
                            ).evaluate(points, seeds=(0,),
                                       reduction_factor=4.0)
        assert sweep.failed == len(points)
        assert sweep.ok_results == []


class TestRecipeWarmStart:
    def test_serial_sweep_counts_recipe_reuse(self, profile, points):
        from repro.obs.metrics import get_registry
        from repro.core.synthesis import tables_cached

        before = get_registry().snapshot()["counters"].get(
            "dse.recipe_reuse", 0)
        sweep = SweepEngine(profile, jobs=1).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert sweep.failed == 0
        after = get_registry().snapshot()["counters"]["dse.recipe_reuse"]
        # Every evaluation ran against tables prepared up front.
        assert after - before == len(points)
        assert tables_cached(profile.sfg)

    def test_worker_init_prebuilds_tables(self, profile):
        from repro.core.serialization import profile_to_dict
        from repro.core.synthesis import tables_cached
        from repro.dse import engine

        engine._worker_init(profile_to_dict(profile))
        try:
            assert engine._WORKER_PROFILE is not None
            assert tables_cached(engine._WORKER_PROFILE.sfg)
        finally:
            engine._WORKER_PROFILE = None
            engine._WORKER_FAULT_PLAN = None


def make_result(edp, ipc, label):
    point = DesignPoint(config=baseline_config(),
                        params=(("label", label),))
    result = PointResult(point=point)
    result.per_seed[0] = {"edp": edp, "ipc": ipc, "epc": 1.0,
                          "synthetic_instructions": 100}
    result.evaluated_seeds = 1
    return result


class TestAnalysis:
    def test_pareto_front(self):
        results = [make_result(10.0, 2.0, "a"),   # front
                   make_result(12.0, 2.5, "b"),   # front
                   make_result(12.0, 1.9, "c"),   # dominated by a
                   make_result(9.0, 1.5, "d")]    # front (cheapest)
        front = [r.point.params_dict()["label"]
                 for r in pareto_front(results)]
        assert front == ["d", "a", "b"]

    def test_verification_shortlist_margin(self):
        results = [make_result(10.0, 2.0, "a"),
                   make_result(10.2, 2.0, "b"),
                   make_result(11.0, 2.0, "c")]
        shortlist = verification_shortlist(results, margin=0.03)
        assert [r.point.params_dict()["label"] for r in shortlist] == \
            ["a", "b"]

    def test_failed_points_excluded(self):
        good = make_result(10.0, 2.0, "a")
        bad = PointResult(point=DesignPoint(config=baseline_config()))
        bad.failed_seeds = 1
        assert pareto_front([good, bad]) == [good]
        assert verification_shortlist([good, bad]) == [good]
