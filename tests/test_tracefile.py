"""Tests for the binary trace file format."""

import pytest

from repro.frontend.tracefile import load_trace, save_trace


class TestRoundTrip:
    def test_instructions_identical(self, small_trace, tmp_path):
        path = tmp_path / "trace.bin"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert loaded.name == small_trace.name
        assert len(loaded) == len(small_trace)
        for a, b in zip(small_trace, loaded):
            assert a.seq == b.seq
            assert a.pc == b.pc
            assert a.iclass == b.iclass
            assert a.bb_id == b.bb_id
            assert a.src_regs == b.src_regs
            assert a.dst_reg == b.dst_reg
            assert a.mem_addr == b.mem_addr
            assert a.taken == b.taken
            assert a.target == b.target

    def test_loaded_trace_profiles_identically(self, small_trace, config,
                                               tmp_path):
        from repro.core.profiler import profile_trace

        path = tmp_path / "trace.bin"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        original = profile_trace(small_trace, config, order=1)
        replayed = profile_trace(loaded, config, order=1)
        assert set(original.sfg.contexts) == set(replayed.sfg.contexts)
        assert original.sfg.transitions == replayed.sfg.transitions

    def test_truncated_file_rejected(self, small_trace, tmp_path):
        path = tmp_path / "trace.bin"
        save_trace(small_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(ValueError):
            load_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "trace.bin"
        path.write_bytes(b'{"version": 9, "name": "x", "count": 0}\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_empty_trace(self, tmp_path):
        from repro.frontend.trace import Trace

        path = tmp_path / "empty.bin"
        save_trace(Trace(name="empty", instructions=[]), path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"
