"""Tests for immediate- and delayed-update branch profiling (the
paper's section 2.1.3 contribution)."""

import pytest

from repro.config import BranchPredictorConfig, baseline_config
from repro.frontend.functional import run_program
from repro.branch.profiler import (
    mispredictions_per_kilo_instruction,
    outcome_counts,
    profile_branches_delayed,
    profile_branches_immediate,
)
from repro.branch.unit import BranchOutcome, BranchPredictorUnit

from conftest import make_tiny_program


def _unit():
    return BranchPredictorUnit(BranchPredictorConfig(
        meta_entries=512, bimodal_entries=512,
        local_history_entries=512, local_pht_entries=512,
        local_history_bits=8, btb_entries=64, btb_associativity=4))


@pytest.fixture
def loop_trace():
    return run_program(make_tiny_program(trip_count=6), n_instructions=800)


class TestImmediateProfiling:
    def test_one_record_per_branch(self, loop_trace):
        records = profile_branches_immediate(loop_trace, _unit())
        assert len(records) == loop_trace.num_branches

    def test_records_in_trace_order(self, loop_trace):
        records = profile_branches_immediate(loop_trace, _unit())
        sequences = [record.seq for record in records]
        assert sequences == sorted(sequences)

    def test_taken_flags_match_trace(self, loop_trace):
        records = profile_branches_immediate(loop_trace, _unit())
        by_seq = {inst.seq: inst for inst in loop_trace if inst.is_branch}
        for record in records:
            assert record.taken == by_seq[record.seq].taken


class TestDelayedProfiling:
    def test_one_record_per_branch(self, loop_trace):
        records = profile_branches_delayed(loop_trace, _unit(),
                                           fifo_size=32)
        assert len(records) == loop_trace.num_branches

    def test_fifo_size_one_equals_immediate(self, loop_trace):
        # With a 1-entry FIFO the update directly follows the lookup, so
        # delayed profiling degenerates to immediate profiling.
        immediate = profile_branches_immediate(loop_trace, _unit())
        delayed = profile_branches_delayed(loop_trace, _unit(),
                                           fifo_size=1)
        assert [r.outcome for r in immediate] == \
            [r.outcome for r in delayed]

    def test_delay_increases_mispredictions_on_tight_loops(self):
        # A short-trip loop's exit pattern is learnable with immediate
        # update, but stale with a large FIFO.
        trace = run_program(make_tiny_program(trip_count=4),
                            n_instructions=4000)
        immediate = profile_branches_immediate(trace, _unit())
        delayed = profile_branches_delayed(trace, _unit(), fifo_size=32)
        imm = mispredictions_per_kilo_instruction(immediate, len(trace))
        dly = mispredictions_per_kilo_instruction(delayed, len(trace))
        assert dly >= imm

    def test_rejects_bad_fifo(self, loop_trace):
        with pytest.raises(ValueError):
            profile_branches_delayed(loop_trace, _unit(), fifo_size=0)

    def test_deterministic(self, loop_trace):
        a = profile_branches_delayed(loop_trace, _unit(), fifo_size=16)
        b = profile_branches_delayed(loop_trace, _unit(), fifo_size=16)
        assert [(r.seq, r.outcome) for r in a] == \
            [(r.seq, r.outcome) for r in b]


class TestMetrics:
    def test_mpki(self):
        records = [
            type("R", (), {"outcome": BranchOutcome.MISPREDICTION})(),
            type("R", (), {"outcome": BranchOutcome.CORRECT})(),
        ]
        assert mispredictions_per_kilo_instruction(records, 1000) == 1.0

    def test_mpki_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            mispredictions_per_kilo_instruction([], 0)

    def test_outcome_counts(self, loop_trace):
        records = profile_branches_immediate(loop_trace, _unit())
        counts = outcome_counts(records)
        assert sum(counts.values()) == len(records)
        assert set(counts) == set(BranchOutcome)
