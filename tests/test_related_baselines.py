"""Tests for the related-work workload models (independent and
size-correlated)."""

import pytest

from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.branch.unit import BranchOutcome
from repro.baselines.related import (
    IndependentModel,
    SizeCorrelatedModel,
    _Distribution,
    run_model,
)


class TestDistribution:
    def test_sampling_respects_weights(self):
        import random

        dist = _Distribution({1: 90, 10: 10})
        rng = random.Random(0)
        samples = [dist.sample(rng) for _ in range(1000)]
        assert 0.8 < samples.count(1) / len(samples) < 0.97

    def test_empty_distribution(self):
        import random

        dist = _Distribution({})
        assert not dist
        with pytest.raises(ValueError):
            dist.sample(random.Random(0))


@pytest.fixture
def independent(small_trace, config):
    return IndependentModel(small_trace, config)


@pytest.fixture
def size_correlated(small_trace, config):
    return SizeCorrelatedModel(small_trace, config)


class TestIndependentModel:
    def test_generates_requested_length(self, independent, config):
        trace = independent.generate(800, seed=0)
        assert len(trace) == 800

    def test_deterministic(self, independent):
        a = independent.generate(400, seed=3)
        b = independent.generate(400, seed=3)
        assert [i.iclass for i in a] == [i.iclass for i in b]

    def test_branches_end_blocks(self, independent):
        trace = independent.generate(600, seed=1)
        for inst in trace:
            if inst.is_branch:
                assert inst.outcome in BranchOutcome

    def test_dependencies_valid(self, independent):
        trace = independent.generate(600, seed=1)
        instructions = trace.instructions
        for index, inst in enumerate(instructions):
            for distance in inst.dep_distances:
                target = index - distance
                if target >= 0:
                    assert instructions[target].produces_register

    def test_simulates(self, independent, config):
        result, power = run_model(independent, config, length=600)
        assert result.instructions == 600
        assert power.total > 0


class TestSizeCorrelatedModel:
    def test_block_structure_preserved(self, size_correlated):
        trace = size_correlated.generate(600, seed=0)
        # Branches appear only at block-final slots by construction:
        # walking the trace, each sampled block ends with one branch.
        count = 0
        sizes = set(size_correlated.globals.block_sizes)
        for inst in trace:
            count += 1
            if inst.is_branch:
                assert count in sizes
                count = 0

    def test_size_distribution_tracks_reference(self, size_correlated,
                                                small_trace):
        trace = size_correlated.generate(2500, seed=0)
        sizes = []
        count = 0
        for inst in trace:
            count += 1
            if inst.is_branch:
                sizes.append(count)
                count = 0
        generated_mean = sum(sizes) / len(sizes)
        reference = size_correlated.globals.block_sizes
        reference_mean = (sum(s * c for s, c in reference.items())
                          / sum(reference.values()))
        assert abs(generated_mean - reference_mean) < 1.5

    def test_deterministic(self, size_correlated):
        a = size_correlated.generate(400, seed=2)
        b = size_correlated.generate(400, seed=2)
        assert [i.iclass for i in a] == [i.iclass for i in b]

    def test_simulates(self, size_correlated, config):
        result, power = run_model(size_correlated, config, length=600)
        assert result.instructions == 600
