"""Tests for machine configuration objects and sweep helpers."""

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    MachineConfig,
    TLBConfig,
    baseline_config,
    simplescalar_default_config,
)


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig("c", 8 * 1024, 2, 32, 1)
        assert config.num_sets == 128

    def test_scaled_up(self):
        config = CacheConfig("c", 8 * 1024, 2, 32, 1)
        assert config.scaled(2.0).size_bytes == 16 * 1024

    def test_scaled_down_keeps_validity(self):
        config = CacheConfig("c", 8 * 1024, 2, 32, 1)
        quarter = config.scaled(0.25)
        assert quarter.size_bytes == 2 * 1024
        assert quarter.num_sets >= 1

    def test_scaled_never_below_one_set(self):
        config = CacheConfig("c", 256, 4, 64, 1)
        tiny = config.scaled(0.01)
        assert tiny.size_bytes >= 64 * 4


class TestTable2Defaults:
    def test_baseline_matches_paper_table2(self):
        config = baseline_config()
        assert config.il1.size_bytes == 8 * 1024
        assert config.il1.associativity == 2
        assert config.dl1.size_bytes == 16 * 1024
        assert config.dl1.associativity == 4
        assert config.l2.size_bytes == 1024 * 1024
        assert config.l2.hit_latency == 20
        assert config.memory_latency == 150
        assert config.itlb.entries == 32
        assert config.branch_misprediction_penalty == 14
        assert config.ifq_size == 32
        assert config.ruu_size == 128
        assert config.lsq_size == 32
        assert config.decode_width == 8
        assert config.fetch_speed == 2
        assert config.fetch_width == 16
        assert config.int_alus == 8
        assert config.load_store_units == 4
        assert config.predictor.bimodal_entries == 8192
        assert config.predictor.btb_entries == 512
        assert config.predictor.ras_entries == 64

    def test_simplescalar_default_is_narrower(self):
        default = simplescalar_default_config()
        baseline = baseline_config()
        assert default.decode_width < baseline.decode_width
        assert default.ruu_size < baseline.ruu_size


class TestValidation:
    def test_lsq_cannot_exceed_ruu(self):
        with pytest.raises(ValueError):
            MachineConfig(ruu_size=16, lsq_size=32)

    def test_positive_widths(self):
        with pytest.raises(ValueError):
            MachineConfig(decode_width=0)


class TestSweepHelpers:
    def test_with_window(self):
        config = baseline_config().with_window(64, 32)
        assert config.ruu_size == 64
        assert config.lsq_size == 32

    def test_with_width_sets_all(self):
        config = baseline_config().with_width(4)
        assert config.decode_width == 4
        assert config.issue_width == 4
        assert config.commit_width == 4

    def test_with_ifq(self):
        assert baseline_config().with_ifq(8).ifq_size == 8

    def test_with_predictor_scale(self):
        scaled = baseline_config().with_predictor_scale(0.5)
        assert scaled.predictor.bimodal_entries == 4096
        assert scaled.predictor.meta_entries == 4096

    def test_with_cache_scale(self):
        scaled = baseline_config().with_cache_scale(2.0)
        assert scaled.il1.size_bytes == 16 * 1024
        assert scaled.l2.size_bytes == 2 * 1024 * 1024

    def test_functional_unit_counts(self):
        counts = baseline_config().functional_unit_counts()
        assert counts == {"int_alu": 8, "load_store": 4, "fp_adder": 2,
                          "int_mult_div": 2, "fp_mult_div": 2}

    def test_predictor_scale_floor(self):
        scaled = BranchPredictorConfig(meta_entries=8).scaled(0.01)
        assert scaled.meta_entries >= 4

    def test_tlb_sets(self):
        assert TLBConfig("t", 32, 8).num_sets == 4
