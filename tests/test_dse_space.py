"""Design-point model: sweep specs, expansion, content hashes."""

import pytest

from repro.config import baseline_config
from repro.errors import SweepSpecError
from repro.dse.space import (
    DesignPoint,
    SweepSpec,
    apply_overrides,
    config_hash,
    profile_content_hash,
    reduced_sec46_spec,
)


class TestApplyOverrides:
    def test_plain_field(self):
        config = apply_overrides(baseline_config(), {"ruu_size": 64})
        assert config.ruu_size == 64

    def test_width_alias_sets_all_three(self):
        config = apply_overrides(baseline_config(), {"width": 4})
        assert (config.decode_width, config.issue_width,
                config.commit_width) == (4, 4, 4)

    def test_unsweepable_field_rejected(self):
        # IFQ size changes the statistical profile (section 4.4), so a
        # single-profile sweep over it would be silently wrong.
        with pytest.raises(SweepSpecError, match="not sweepable"):
            apply_overrides(baseline_config(), {"ifq_size": 8})

    def test_unknown_field_rejected(self):
        with pytest.raises(SweepSpecError):
            apply_overrides(baseline_config(), {"no_such_field": 1})


class TestSweepSpec:
    def test_grid_expansion_skips_invalid_combos(self):
        spec = SweepSpec(mode="grid", parameters=(
            ("lsq_size", (8, 64)), ("ruu_size", (16, 128))))
        points = spec.expand()
        # lsq=64/ruu=16 violates the paper's LSQ <= RUU constraint.
        assert len(points) == 3
        assert all(p.config.lsq_size <= p.config.ruu_size
                   for p in points)

    def test_list_mode(self):
        spec = SweepSpec(mode="list", points=(
            (("ruu_size", 32),), (("ruu_size", 64), ("width", 2))))
        points = spec.expand()
        assert [p.params_dict() for p in points] == [
            {"ruu_size": 32}, {"ruu_size": 64, "width": 2}]

    def test_random_mode_is_deterministic(self):
        spec = SweepSpec(mode="random", samples=4, seed=7, parameters=(
            ("ruu_size", (32, 64, 128)), ("width", (2, 4, 8))))
        first = [p.point_id for p in spec.expand()]
        second = [p.point_id for p in spec.expand()]
        assert first == second
        assert len(first) == 4
        assert len(set(first)) == 4

    def test_random_requires_samples(self):
        with pytest.raises(SweepSpecError, match="samples"):
            SweepSpec(mode="random", parameters=(("width", (2, 4)),))

    def test_unknown_mode_rejected(self):
        with pytest.raises(SweepSpecError, match="mode"):
            SweepSpec(mode="lattice", parameters=(("width", (2,)),))

    def test_base_overrides_apply_to_every_point(self):
        spec = SweepSpec(mode="grid",
                         parameters=(("width", (2, 4)),),
                         base=(("memory_latency", 99),))
        assert all(p.config.memory_latency == 99
                   for p in spec.expand())

    def test_from_dict_round_trip(self):
        data = {"name": "s", "mode": "grid",
                "parameters": {"ruu_size": [32, 64], "width": [2]},
                "base": {"memory_latency": 120}}
        spec = SweepSpec.from_dict(data)
        assert spec.to_dict()["parameters"] == data["parameters"]
        assert len(spec.expand()) == 2

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SweepSpecError, match="unknown keys"):
            SweepSpec.from_dict({"mode": "grid", "grid": {}})

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{not json")
        with pytest.raises(SweepSpecError, match="not valid JSON"):
            SweepSpec.from_file(path)

    def test_empty_expansion_is_an_error(self):
        spec = SweepSpec(mode="grid", parameters=(
            ("lsq_size", (64,)), ("ruu_size", (16,))))
        with pytest.raises(SweepSpecError, match="zero valid"):
            spec.expand()

    def test_reduced_sec46_spec_matches_paper_constraint(self):
        points = reduced_sec46_spec().expand()
        # 4 RUU x 3 LSQ x 3 widths = 36, minus the three lsq > ruu
        # combos (ruu=16 with lsq=32) at each of the 3 widths.
        assert len(points) == 33
        assert all(p.config.lsq_size <= p.config.ruu_size
                   for p in points)


class TestHashes:
    def test_config_hash_stable_and_sensitive(self):
        base = baseline_config()
        assert config_hash(base) == config_hash(baseline_config())
        changed = apply_overrides(base, {"ruu_size": 64})
        assert config_hash(changed) != config_hash(base)

    def test_point_id_and_hash(self):
        point = DesignPoint(config=baseline_config(),
                            params=(("ruu_size", 64), ("width", 4)))
        assert point.point_id == "ruu_size=64,width=4"
        assert len(point.config_hash) == 64

    def test_profile_hash_sensitive_to_content(self, tiny_trace, config):
        from repro.core.profiler import profile_trace

        p1 = profile_trace(tiny_trace, config, order=1)
        p2 = profile_trace(tiny_trace, config, order=0)
        assert profile_content_hash(p1) == profile_content_hash(p1)
        assert profile_content_hash(p1) != profile_content_hash(p2)
