"""Durable job store: idempotent submission, journaled recovery,
checkpoint compaction, lease staleness, cancellation."""

import json
import os
import time

import pytest

from repro.faults import ChaosPlan
from repro.service.jobs import JobStore, job_key


def store_at(tmp_path, **kwargs):
    kwargs.setdefault("checkpoint_every", 1000)  # journal-only unless asked
    return JobStore(tmp_path / "state", **kwargs)


PAYLOAD = {"kind": "sleep", "seconds": 0.01, "tag": "t"}


class TestSubmitIdempotency:
    def test_job_id_is_content_hash_prefix(self, tmp_path):
        store = store_at(tmp_path)
        job, created = store.submit(PAYLOAD, client="a")
        assert created
        assert job.job_id == job_key(PAYLOAD)[:12]

    def test_field_order_cannot_split_jobs(self, tmp_path):
        store = store_at(tmp_path)
        a, _ = store.submit({"kind": "sleep", "seconds": 1}, "a")
        b, created = store.submit({"seconds": 1, "kind": "sleep"}, "b")
        assert not created
        assert a.job_id == b.job_id

    def test_resubmit_queued_dedups(self, tmp_path):
        store = store_at(tmp_path)
        first, _ = store.submit(PAYLOAD, "a")
        second, created = store.submit(PAYLOAD, "a")
        assert not created
        assert second is first
        assert store.queue_depth() == 1

    def test_resubmit_done_short_circuits(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, {"answer": 42})
        again, created = store.submit(PAYLOAD, "a")
        assert not created
        assert again.state == "done"
        assert again.result == {"answer": 42}
        assert store.queue_depth() == 0

    def test_resubmit_failed_revives(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        store.mark_failed(job.job_id, {"type": "ValueError",
                                       "message": "boom"})
        again, created = store.submit(PAYLOAD, "a")
        assert not created
        assert again.state == "queued"
        assert again.error is None

    def test_distinct_payloads_distinct_jobs(self, tmp_path):
        store = store_at(tmp_path)
        a, _ = store.submit({"kind": "sleep", "seconds": 1}, "a")
        b, _ = store.submit({"kind": "sleep", "seconds": 2}, "a")
        assert a.job_id != b.job_id
        assert store.queue_depth() == 2


class TestRecovery:
    def test_kill_and_replay_loses_nothing(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        other, _ = store.submit({"kind": "sleep", "seconds": 9}, "b")
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, {"ok": 1})
        # kill -9: no checkpoint(), no close() — just a fresh store.
        revived = store_at(tmp_path)
        report = revived.recover()
        assert report.jobs == 2
        assert revived.get(job.job_id).state == "done"
        assert revived.get(job.job_id).result == {"ok": 1}
        assert revived.get(other.job_id).state == "queued"

    def test_checkpoint_then_journal_tail(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=2)
        jobs = [store.submit({"kind": "sleep", "seconds": s}, "a")[0]
                for s in range(5)]
        # checkpoint_every=2 → compactions happened; tail is short.
        revived = store_at(tmp_path)
        report = revived.recover()
        assert report.checkpoint_loaded
        assert report.jobs == 5
        assert {j.job_id for j in jobs} == set(revived.jobs)

    def test_corrupt_checkpoint_falls_back_to_journal(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=1000)
        job, _ = store.submit(PAYLOAD, "a")
        store.checkpoint()
        store.submit({"kind": "sleep", "seconds": 9}, "b")
        store.checkpoint_path.write_text("{not json")
        revived = store_at(tmp_path)
        report = revived.recover()
        assert report.checkpoint_corrupt
        # The checkpointed job's journal lines were compacted away, so
        # a corrupt checkpoint can only recover the post-checkpoint
        # tail — which is why the checkpoint is written atomically
        # with a checksum in the first place.
        assert report.jobs >= 1

    def test_requeues_stale_running_job(self, tmp_path):
        store = store_at(tmp_path, lease_ttl=0.05)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        time.sleep(0.1)  # heartbeat goes stale
        revived = store_at(tmp_path, lease_ttl=0.05)
        report = revived.recover()
        assert report.requeued == [job.job_id]
        revived_job = revived.get(job.job_id)
        assert revived_job.state == "queued"
        assert revived_job.requeues == 1

    def test_missing_lease_counts_as_stale(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        store.clear_lease(job.job_id)
        revived = store_at(tmp_path)
        assert revived.recover().requeued == [job.job_id]

    def test_fresh_own_lease_is_not_stale(self, tmp_path):
        store = store_at(tmp_path, lease_ttl=30.0)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        # Same pid, fresh heartbeat: recovery in the same process (the
        # daemon re-running recover would be a bug, but staleness must
        # still be judged correctly).
        assert not store._lease_is_stale(store.get(job.job_id))

    def test_dead_pid_is_stale_even_when_fresh(self, tmp_path):
        store = store_at(tmp_path, lease_ttl=300.0)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        lease = store._lease_path(job.job_id)
        record = json.loads(lease.read_text())
        record["pid"] = 2 ** 22 + 12345  # vanishingly unlikely to exist
        lease.write_text(json.dumps(record))
        revived = store_at(tmp_path, lease_ttl=300.0)
        assert revived.recover().requeued == [job.job_id]

    def test_torn_journal_tail_drops_unacknowledged_only(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        path = store.state_dir / "journal.jsonl"
        data = path.read_bytes()
        path.write_bytes(data + b'{"seq": 99, "torn')
        revived = store_at(tmp_path)
        report = revived.recover()
        assert report.dropped_lines == 1
        assert revived.get(job.job_id).state == "queued"


class TestHeartbeatChaos:
    def test_lost_heartbeats_leave_lease_stale(self, tmp_path):
        plan = ChaosPlan.parse("seed=1;heartbeat-loss")
        store = store_at(tmp_path, fault_plan=plan, lease_ttl=0.05)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        time.sleep(0.1)
        for beat in range(1, 5):
            store.write_heartbeat(job.job_id, beat=beat)  # all swallowed
        revived = store_at(tmp_path, lease_ttl=0.05)
        assert revived.recover().requeued == [job.job_id]

    def test_delivered_heartbeats_keep_lease_fresh(self, tmp_path):
        store = store_at(tmp_path, fault_plan=None, lease_ttl=0.2)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        time.sleep(0.1)
        store.write_heartbeat(job.job_id, beat=1)
        assert not store._lease_is_stale(store.get(job.job_id))


class TestCheckpointCompaction:
    def test_checkpoint_truncates_journal(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=3)
        for s in range(3):
            store.submit({"kind": "sleep", "seconds": s}, "a")
        journal = store.state_dir / "journal.jsonl"
        assert journal.read_text() == ""
        assert store.checkpoint_path.exists()

    def test_journal_stays_bounded_by_churn(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=4)
        for s in range(22):
            store.submit({"kind": "sleep", "seconds": s}, "a")
        journal = store.state_dir / "journal.jsonl"
        lines = [line for line in journal.read_text().splitlines()
                 if line]
        assert len(lines) < 4


class TestCancel:
    def test_cancel_queued(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        assert store.cancel(job.job_id) == "cancelled"
        assert store.get(job.job_id).state == "cancelled"
        assert store.queue_depth() == 0

    def test_cancel_running_defers(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        assert store.cancel(job.job_id) == "cancel-requested"
        finished = store.mark_done(job.job_id, {"ok": 1})
        assert finished.state == "cancelled"

    def test_cancel_queued_releases_inflight_cap(self, tmp_path):
        """A cancelled queued job must stop counting against its
        client's in-flight cap immediately — not only once a worker
        dequeues the corpse — or a submit/cancel loop wedges the
        client out of the service."""
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        assert store.client_inflight("a") == 1
        store.cancel(job.job_id)
        assert store.client_inflight("a") == 0

    def test_mark_running_after_cancel_is_refused(self, tmp_path):
        """The dispatch race: the daemon claims a job, the client
        cancels it before _execute runs.  mark_running must refuse the
        stale claim (return None) and leave the job cancelled."""
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        store.cancel(job.job_id)
        assert store.mark_running(job.job_id) is None
        assert store.get(job.job_id).state == "cancelled"

    def test_mark_running_returns_job_when_queued(self, tmp_path):
        store = store_at(tmp_path)
        job, _ = store.submit(PAYLOAD, "a")
        claimed = store.mark_running(job.job_id)
        assert claimed is job
        assert claimed.state == "running"

    def test_cancel_unknown_or_terminal(self, tmp_path):
        store = store_at(tmp_path)
        assert store.cancel("nope") is None
        job, _ = store.submit(PAYLOAD, "a")
        store.mark_running(job.job_id)
        store.mark_done(job.job_id, None)
        assert store.cancel(job.job_id) == "done"


class TestQueries:
    def test_fifo_order_and_counts(self, tmp_path):
        store = store_at(tmp_path)
        ids = []
        for s in range(3):
            job, _ = store.submit({"kind": "sleep", "seconds": s}, "a")
            ids.append(job.job_id)
            time.sleep(0.01)
        assert [j.job_id for j in store.queued_jobs()] == ids
        store.mark_running(ids[0])
        assert store.counts()["queued"] == 2
        assert store.counts()["running"] == 1
        assert store.client_inflight("a") == 3
        assert store.client_inflight("b") == 0
