"""Result-cache index: maintained counts/sizes, LRU eviction, and
self-healing after index loss or drift."""

import json
import time

import pytest

from repro.dse.cache import INDEX_FORMAT, ResultCache, result_key


def make_cache(tmp_path, **kwargs):
    return ResultCache(tmp_path / "cache", fault_plan=None, **kwargs)


def put_n(cache, n, start=0, pause=0.0):
    keys = []
    for i in range(start, start + n):
        key = result_key(f"profile{i}", "config", i, 4.0)
        cache.put(key, {"ipc": float(i)})
        keys.append(key)
        if pause:
            time.sleep(pause)
    return keys


class TestMaintainedIndex:
    def test_len_and_bytes_track_puts(self, tmp_path):
        cache = make_cache(tmp_path)
        assert len(cache) == 0
        assert cache.total_bytes() == 0
        keys = put_n(cache, 5)
        assert len(cache) == 5
        on_disk = sum(cache._path(key).stat().st_size for key in keys)
        assert cache.total_bytes() == on_disk

    def test_len_without_directory_scan(self, tmp_path, monkeypatch):
        """__len__ must come from the index, not a glob over objects."""
        cache = make_cache(tmp_path)
        put_n(cache, 4)
        import pathlib

        def no_glob(self, pattern):
            raise AssertionError("len() must not glob object files")

        monkeypatch.setattr(pathlib.Path, "glob", no_glob)
        assert len(cache) == 4

    def test_corrupt_discard_updates_index(self, tmp_path):
        cache = make_cache(tmp_path)
        [key] = put_n(cache, 1)
        path = cache._path(key)
        path.write_text(path.read_text().replace('"ipc"', '"ipX"'))
        assert cache.get(key) is None
        assert cache.stats.corrupt_discarded == 1
        assert len(cache) == 0

    def test_second_instance_sees_the_index(self, tmp_path):
        put_n(make_cache(tmp_path), 3)
        fresh = make_cache(tmp_path)
        assert len(fresh) == 3


class TestSelfHealing:
    def test_deleted_index_rebuilds_from_objects(self, tmp_path):
        cache = make_cache(tmp_path)
        keys = put_n(cache, 4)
        for path in (cache.cache_dir / "index").glob("*.json"):
            path.unlink()
        assert len(cache) == 4
        assert all(cache.get(key) is not None for key in keys)

    def test_corrupt_index_rebuilds(self, tmp_path):
        cache = make_cache(tmp_path)
        put_n(cache, 4)
        for path in (cache.cache_dir / "index").glob("*.json"):
            path.write_text("garbage{{{")
        assert len(cache) == 4

    def test_wrong_format_index_rebuilds(self, tmp_path):
        cache = make_cache(tmp_path)
        [key] = put_n(cache, 1)
        from repro.runner.checkpoint import write_json_atomic

        write_json_atomic(cache._index_path(key[:2]),
                          {"format": INDEX_FORMAT + 1, "entries": {}})
        assert len(cache) == 1

    def test_rebuild_index_reports_drift(self, tmp_path):
        cache = make_cache(tmp_path)
        keys = put_n(cache, 3)
        # Remove an object behind the cache's back; the index drifts.
        cache._path(keys[0]).unlink()
        count, size = cache.rebuild_index()
        assert count == 2
        assert len(cache) == 2
        assert size == cache.total_bytes()


class TestEviction:
    def test_max_entries_evicts_lru(self, tmp_path):
        cache = make_cache(tmp_path, max_entries=3)
        keys = put_n(cache, 3, pause=0.02)
        # Touch the oldest so it becomes most-recent.
        assert cache.get(keys[0]) is not None
        time.sleep(0.02)
        put_n(cache, 1, start=10)
        assert len(cache) == 3
        assert cache.get(keys[1]) is None  # the true LRU went
        assert cache.get(keys[0]) is not None
        assert cache.stats.evictions == 1

    def test_max_bytes_evicts_until_under(self, tmp_path):
        probe = make_cache(tmp_path / "probe")
        [key] = put_n(probe, 1)
        entry_size = probe._path(key).stat().st_size
        cache = make_cache(tmp_path, max_bytes=int(entry_size * 2.5))
        put_n(cache, 4, pause=0.02)
        assert len(cache) == 2
        assert cache.total_bytes() <= int(entry_size * 2.5)
        assert cache.stats.evictions == 2

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = make_cache(tmp_path)
        put_n(cache, 10)
        assert len(cache) == 10
        assert cache.stats.evictions == 0

    def test_bounds_validated(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            make_cache(tmp_path, max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            make_cache(tmp_path / "b", max_bytes=0)

    def test_eviction_preserves_survivors(self, tmp_path):
        cache = make_cache(tmp_path, max_entries=2)
        keys = put_n(cache, 5, pause=0.02)
        survivors = [key for key in keys
                     if cache._path(key).exists()]
        assert len(survivors) == 2
        for key in survivors:
            entry = cache.get(key)
            assert entry is not None and "metrics" in entry
