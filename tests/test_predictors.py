"""Tests for the direction predictors (bimodal, two-level, hybrid)."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.config import BranchPredictorConfig
from repro.branch.predictors import (
    BimodalPredictor,
    HybridPredictor,
    TwoLevelLocalPredictor,
    build_direction_predictor,
)


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(0x1000, True)
        assert predictor.lookup(0x1000) is True
        for _ in range(4):
            predictor.update(0x1000, False)
        assert predictor.lookup(0x1000) is False

    def test_hysteresis(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(0x1000, True)
        # One contrary outcome does not flip a saturated counter.
        predictor.update(0x1000, False)
        assert predictor.lookup(0x1000) is True

    def test_lookup_stateless(self):
        predictor = BimodalPredictor(entries=64)
        before = predictor.lookup(0x2000)
        for _ in range(10):
            predictor.lookup(0x2000)
        assert predictor.lookup(0x2000) == before

    def test_aliasing_by_table_size(self):
        predictor = BimodalPredictor(entries=4)
        for _ in range(4):
            predictor.update(0x0, True)
        # 4 entries x 8-byte instructions: pc 32 aliases to entry 0.
        assert predictor.lookup(32) is True

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=0)

    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    def test_tracks_constant_stream(self, outcomes):
        predictor = BimodalPredictor(entries=16)
        for outcome in outcomes:
            predictor.update(0x1000, outcome)
        # After a run of >= 2 identical outcomes the prediction matches.
        if len(outcomes) >= 2 and outcomes[-1] == outcomes[-2]:
            assert predictor.lookup(0x1000) == outcomes[-1]


class TestTwoLevelLocal:
    def test_learns_periodic_pattern(self):
        predictor = TwoLevelLocalPredictor(history_entries=64,
                                           pht_entries=1024,
                                           history_bits=8)
        pattern = [True, True, False]
        for _ in range(40):  # train
            for outcome in pattern:
                predictor.update(0x1000, outcome)
        hits = 0
        for _ in range(10):
            for outcome in pattern:
                hits += predictor.lookup(0x1000) == outcome
                predictor.update(0x1000, outcome)
        assert hits == 30  # perfect once trained

    def test_separate_histories_per_branch(self):
        predictor = TwoLevelLocalPredictor(history_entries=64,
                                           pht_entries=2048,
                                           history_bits=6)
        # PCs chosen to land in different history-table entries
        # (index = (pc >> 3) % 64).
        for _ in range(60):
            predictor.update(0x1000, True)
            predictor.update(0x1008, False)
        assert predictor.lookup(0x1000) is True
        assert predictor.lookup(0x1008) is False

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TwoLevelLocalPredictor(0, 16, 4)


class TestHybrid:
    def _build(self):
        return HybridPredictor(
            meta_entries=64,
            component_a=BimodalPredictor(64),
            component_b=TwoLevelLocalPredictor(64, 1024, 8),
        )

    def test_meta_picks_better_component(self):
        predictor = self._build()
        pattern = [True, False]  # bimodal cannot learn this; local can
        for _ in range(80):
            for outcome in pattern:
                predictor.update(0x1000, outcome)
        hits = 0
        for _ in range(20):
            for outcome in pattern:
                hits += predictor.lookup(0x1000) == outcome
                predictor.update(0x1000, outcome)
        assert hits >= 38  # near-perfect via the two-level component

    def test_biased_branch_predicted(self):
        predictor = self._build()
        for _ in range(20):
            predictor.update(0x3000, True)
        assert predictor.lookup(0x3000) is True

    def test_rejects_bad_meta(self):
        with pytest.raises(ValueError):
            HybridPredictor(0, BimodalPredictor(4), BimodalPredictor(4))


class TestBuildFromConfig:
    def test_table2_shape(self):
        predictor = build_direction_predictor(BranchPredictorConfig())
        assert predictor.meta_entries == 8192
        assert predictor.component_a.entries == 8192
        assert predictor.component_b.pht_entries == 8192

    def test_deterministic_behavior(self):
        config = BranchPredictorConfig(meta_entries=128,
                                       bimodal_entries=128,
                                       local_history_entries=128,
                                       local_pht_entries=128,
                                       local_history_bits=6)
        a = build_direction_predictor(config)
        b = build_direction_predictor(config)
        import random
        rng = random.Random(5)
        for _ in range(300):
            pc = rng.randrange(64) * 8
            taken = rng.random() < 0.6
            assert a.lookup(pc) == b.lookup(pc)
            a.update(pc, taken)
            b.update(pc, taken)
