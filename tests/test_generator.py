"""Unit and property tests for the workload program generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.iclass import BRANCH_CLASSES, IClass
from repro.workloads.generator import (
    DEFAULT_MIX,
    WorkloadConfig,
    generate_program,
)


class TestWorkloadConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig(name="x", seed=1)

    def test_too_few_blocks(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="x", seed=1, n_blocks=0)

    def test_single_block_allowed(self):
        config = WorkloadConfig(name="x", seed=1, n_blocks=1)
        assert generate_program(config).num_blocks == 1

    def test_branch_fractions(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="x", seed=1, loop_fraction=0.8,
                           pattern_fraction=0.5)

    def test_indirect_fraction_bounds(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="x", seed=1, indirect_fraction=0.9)

    def test_mix_must_exclude_branches(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="x", seed=1,
                           instruction_mix={IClass.INT_COND_BRANCH: 1.0})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(name="x", seed=1,
                           instruction_mix={IClass.LOAD: 0.0})


class TestGenerateProgram:
    def test_deterministic(self):
        config = WorkloadConfig(name="d", seed=123, n_blocks=10)
        a = generate_program(config)
        b = generate_program(config)
        assert a.num_blocks == b.num_blocks
        for block_a, block_b in zip(a.blocks, b.blocks):
            assert block_a.address == block_b.address
            assert [i.iclass for i in block_a.instructions] == \
                   [i.iclass for i in block_b.instructions]

    def test_different_seeds_differ(self):
        a = generate_program(WorkloadConfig(name="a", seed=1, n_blocks=20))
        b = generate_program(WorkloadConfig(name="b", seed=2, n_blocks=20))
        layout_a = [i.iclass for block in a.blocks
                    for i in block.instructions]
        layout_b = [i.iclass for block in b.blocks
                    for i in block.instructions]
        assert layout_a != layout_b

    def test_block_count(self, small_workload_config):
        program = generate_program(small_workload_config)
        assert program.num_blocks == small_workload_config.n_blocks

    def test_every_block_ends_in_branch(self, small_program):
        for block in small_program.blocks:
            assert block.branch.iclass in BRANCH_CLASSES

    def test_behaviors_cover_blocks(self, small_program):
        assert len(small_program.branch_behaviors) == \
            small_program.num_blocks
        for block in small_program.blocks:
            assert 0 <= block.branch_behavior < len(
                small_program.branch_behaviors)

    def test_memory_streams_referenced_exist(self, small_program):
        n = len(small_program.memory_streams)
        for block in small_program.blocks:
            for inst in block.instructions:
                if inst.mem_stream is not None:
                    assert 0 <= inst.mem_stream < n

    def test_loads_and_stores_have_streams(self, small_program):
        for block in small_program.blocks:
            for inst in block.instructions:
                if inst.iclass in (IClass.LOAD, IClass.STORE):
                    assert inst.mem_stream is not None
                elif inst.iclass not in BRANCH_CLASSES:
                    assert inst.mem_stream is None

    def test_code_footprint_respected(self):
        config = WorkloadConfig(name="fp", seed=5, n_blocks=16,
                                code_footprint_kb=64)
        program = generate_program(config)
        last = program.blocks[-1]
        span = last.address + last.size * 8 - program.blocks[0].address
        assert span >= 0.8 * 64 * 1024

    def test_addresses_do_not_overlap(self, small_program):
        previous_end = 0
        for block in small_program.blocks:
            assert block.address >= previous_end
            previous_end = block.address + block.size * 8

    def test_indirect_blocks_fraction(self):
        config = WorkloadConfig(name="ind", seed=9, n_blocks=50,
                                indirect_fraction=0.2)
        program = generate_program(config)
        indirect = sum(block.is_indirect for block in program.blocks)
        assert indirect == round(0.2 * 50)
        for block in program.blocks:
            if block.is_indirect:
                assert len(block.indirect_targets) >= 2

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**20), n_blocks=st.integers(4, 40),
           mean=st.integers(2, 12))
    def test_generated_programs_always_valid(self, seed, n_blocks, mean):
        config = WorkloadConfig(name="h", seed=seed, n_blocks=n_blocks,
                                mean_block_size=mean)
        program = generate_program(config)  # Program.__post_init__ checks
        assert program.num_blocks == n_blocks
        reachable = program.validate_reachability()
        assert 0 in reachable

    def test_static_mix_approximates_target(self):
        config = WorkloadConfig(name="mix", seed=3, n_blocks=60,
                                mean_block_size=8)
        program = generate_program(config)
        body = [inst.iclass for block in program.blocks
                for inst in block.instructions
                if inst.iclass not in BRANCH_CLASSES]
        load_fraction = body.count(IClass.LOAD) / len(body)
        target = DEFAULT_MIX[IClass.LOAD]
        assert 0.6 * target < load_fraction < 1.4 * target

    def test_execution_exercises_memory(self, small_program):
        from repro.frontend.functional import run_program

        trace = run_program(small_program, n_instructions=5000)
        mix = trace.instruction_mix()
        # Dynamic mixes are skewed by hot loops, but loads must appear
        # and branches cannot dominate outright (blocks have bodies).
        assert mix.get(IClass.LOAD, 0.0) > 0.01
        branch_fraction = sum(mix.get(c, 0.0) for c in BRANCH_CLASSES)
        assert branch_fraction <= 0.5
