"""Columnar batch synthesis and the pipeline's vectorized fast path.

Three contracts, mirroring the three layers of the columnar subsystem:

1. **statistical equivalence** — the columnar generator walks the same
   context sequence as the scalar generator (same ``random.Random``
   stream), so structure (instruction classes, length) is identical,
   and its independent numpy draws must converge to the profile within
   the same acceptance tolerances as the scalar draws;
2. **cycle exactness** — given the *same* trace,
   :class:`~repro.cpu.source.ColumnarSource` through the pipeline's
   vectorized loop produces a byte-identical
   :class:`~repro.cpu.results.SimulationResult` (every field, the full
   activity dict) to :class:`~repro.cpu.source.PreannotatedSource`
   through the generic loop — the fast path changes representation,
   never semantics;
3. **end-to-end agreement** — seed-averaged IPC through the vector
   path tracks the scalar path on the Table 1 machine within the noise
   of the two (statistically equivalent, draw-independent) streams.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import baseline_config
from repro.core.columnar import (
    ColumnarTrace,
    adopt_columnar_tables,
    build_columnar_tables,
    columnar_tables_cached,
    columnar_tables_for,
    generate_columnar_trace,
)
from repro.core.profiler import profile_trace
from repro.core.synthesis import (
    generate_synthetic_trace,
    generate_synthetic_trace_columnar,
)
from repro.cpu.pipeline import SuperscalarPipeline, simulate
from repro.cpu.source import ColumnarSource, PreannotatedSource
from repro.fuzz.acceptance import ToleranceConfig, acceptance_report


@pytest.fixture
def profile(small_trace, config):
    return profile_trace(small_trace, config, order=1)


# ---------------------------------------------------------------------
# layer 1: the columnar generator
# ---------------------------------------------------------------------


class TestColumnarSynthesis:
    def test_same_context_multiset_as_scalar(self, profile):
        """Both walks drain every context's full reduced budget, so
        the trace length and per-class instruction counts are exactly
        identical — only the visit order and per-instruction draws
        differ between the streams."""
        scalar = generate_synthetic_trace(profile, 3.0, seed=5)
        columnar = generate_columnar_trace(profile, 3.0, seed=5)
        assert len(columnar.iclass) == len(scalar.instructions)
        scalar_classes = np.bincount(
            [int(inst.iclass) for inst in scalar.instructions],
            minlength=16)
        columnar_classes = np.bincount(columnar.iclass, minlength=16)
        assert scalar_classes.tolist() == columnar_classes.tolist()

    def test_draws_pass_scalar_acceptance(self, profile):
        """The columnar stream must satisfy the same statistical
        acceptance against the profile as the scalar stream."""
        tolerances = ToleranceConfig()
        scalar = generate_synthetic_trace(profile, 2.0, seed=0)
        report = acceptance_report(profile, scalar, tolerances)
        assert report.passed, f"scalar baseline: {report.summary()}"
        columnar = generate_columnar_trace(profile, 2.0, seed=0)
        report = acceptance_report(profile,
                                   columnar.to_synthetic_trace(),
                                   tolerances)
        assert report.passed, f"columnar: {report.summary()}"

    def test_deterministic_per_seed(self, profile):
        a = generate_columnar_trace(profile, 4.0, seed=3)
        b = generate_columnar_trace(profile, 4.0, seed=3)
        for name in ("iclass", "dep_off", "dep_val", "il1", "dl1",
                     "taken", "outcome"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name
        c = generate_columnar_trace(profile, 4.0, seed=4)
        assert not np.array_equal(a.dep_val, c.dep_val)

    def test_summary_matches_materialized_trace(self, profile):
        columnar = generate_columnar_trace(profile, 4.0, seed=1)
        materialized = columnar.to_synthetic_trace()
        assert columnar.summary() == materialized.summary()

    def test_public_wrapper_is_the_columnar_generator(self, profile):
        trace = generate_synthetic_trace_columnar(profile, 4.0, seed=2)
        assert isinstance(trace, ColumnarTrace)
        twin = generate_columnar_trace(profile, 4.0, seed=2)
        assert np.array_equal(trace.iclass, twin.iclass)
        assert np.array_equal(trace.dep_val, twin.dep_val)

    def test_dependency_distances_within_bounds(self, profile):
        columnar = generate_columnar_trace(profile, 2.0, seed=0)
        if len(columnar.dep_val):
            assert columnar.dep_val.min() >= 1
        # CSR offsets partition the dependency column.
        assert columnar.dep_off[0] == 0
        assert columnar.dep_off[-1] == len(columnar.dep_val)
        assert (np.diff(columnar.dep_off) >= 0).all()


class TestColumnarTablesCache:
    def test_tables_cached_per_sfg(self, profile):
        assert not columnar_tables_cached(profile.sfg)
        first = columnar_tables_for(profile.sfg)
        assert columnar_tables_cached(profile.sfg)
        assert columnar_tables_for(profile.sfg) is first

    def test_adopted_tables_are_served_from_cache(self, small_trace,
                                                  config):
        donor = profile_trace(small_trace, config, order=1)
        receiver = profile_trace(small_trace, config, order=1)
        tables = build_columnar_tables(donor.sfg)
        adopt_columnar_tables(receiver.sfg, tables)
        assert columnar_tables_cached(receiver.sfg)
        assert columnar_tables_for(receiver.sfg) is tables

    def test_adopted_tables_synthesize_identically(self, small_trace,
                                                   config):
        donor = profile_trace(small_trace, config, order=1)
        receiver = profile_trace(small_trace, config, order=1)
        adopt_columnar_tables(receiver.sfg,
                              build_columnar_tables(donor.sfg))
        a = generate_columnar_trace(donor, 4.0, seed=0)
        b = generate_columnar_trace(receiver, 4.0, seed=0)
        assert np.array_equal(a.iclass, b.iclass)
        assert np.array_equal(a.dep_val, b.dep_val)
        assert np.array_equal(a.outcome, b.outcome)


# ---------------------------------------------------------------------
# layer 2: the pipeline fast path
# ---------------------------------------------------------------------


def _result_fields(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "avg_ruu_occupancy": result.avg_ruu_occupancy,
        "avg_lsq_occupancy": result.avg_lsq_occupancy,
        "avg_ifq_occupancy": result.avg_ifq_occupancy,
        "activity": result.activity,
        "branches": result.branches,
        "taken_branches": result.taken_branches,
        "fetch_redirections": result.fetch_redirections,
        "branch_mispredictions": result.branch_mispredictions,
        "squashed_instructions": result.squashed_instructions,
    }


class TestColumnarSourceCycleExact:
    @pytest.mark.parametrize("seed", range(4))
    def test_identical_to_generic_loop(self, profile, config, seed):
        columnar = generate_columnar_trace(profile, 3.0, seed=seed)
        slots = columnar.to_synthetic_trace().to_fetch_slots(config)
        generic = simulate(config, PreannotatedSource(slots))
        fast = simulate(config, ColumnarSource(columnar, config))
        assert _result_fields(fast) == _result_fields(generic)

    def test_identical_commit_log(self, profile, config):
        columnar = generate_columnar_trace(profile, 4.0, seed=9)
        slots = columnar.to_synthetic_trace().to_fetch_slots(config)
        log_generic, log_fast = [], []
        SuperscalarPipeline(config, PreannotatedSource(slots)).run(
            commit_log=log_generic)
        SuperscalarPipeline(
            config, ColumnarSource(columnar, config)).run(
            commit_log=log_fast)
        assert log_fast == log_generic

    def test_in_order_falls_back_to_generic_loop(self, profile):
        """The vectorized loop only handles out-of-order issue;
        ColumnarSource must still work through the generic loop via its
        protocol methods when in_order_issue is set."""
        config = dataclasses.replace(baseline_config(),
                                     in_order_issue=True)
        columnar = generate_columnar_trace(profile, 4.0, seed=2)
        slots = columnar.to_synthetic_trace().to_fetch_slots(config)
        generic = simulate(config, PreannotatedSource(slots))
        fallback = simulate(config, ColumnarSource(columnar, config))
        assert _result_fields(fallback) == _result_fields(generic)


# ---------------------------------------------------------------------
# layer 3: end-to-end agreement (Table 1 machine)
# ---------------------------------------------------------------------


class TestEndToEndAgreement:
    #: Scalar and columnar draws are independent streams, so per-seed
    #: IPC differs; seed-averaged IPC agrees within this relative
    #: epsilon on the small generated workload (documented alongside
    #: the measured per-seed spread in docs/performance.md).
    EPSILON = 0.15

    def test_seed_averaged_ipc_agrees(self, profile, config):
        from repro.core.framework import (simulate_columnar_trace,
                                          simulate_synthetic_trace)

        seeds = range(6)
        scalar_ipc = []
        vector_ipc = []
        for seed in seeds:
            scalar = generate_synthetic_trace(profile, 3.0, seed=seed)
            columnar = generate_columnar_trace(profile, 3.0, seed=seed)
            scalar_ipc.append(
                simulate_synthetic_trace(scalar, config)[0].ipc)
            vector_ipc.append(
                simulate_columnar_trace(columnar, config)[0].ipc)
        scalar_mean = sum(scalar_ipc) / len(scalar_ipc)
        vector_mean = sum(vector_ipc) / len(vector_ipc)
        assert abs(vector_mean - scalar_mean) / scalar_mean \
            < self.EPSILON, (scalar_ipc, vector_ipc)

    def test_run_statistical_simulation_vector_flag(self, small_trace,
                                                    config):
        from repro.core.framework import run_statistical_simulation

        scalar = run_statistical_simulation(small_trace, config,
                                            reduction_factor=3.0)
        vector = run_statistical_simulation(small_trace, config,
                                            reduction_factor=3.0,
                                            vector=True)
        assert len(vector.synthetic_trace) == len(scalar.synthetic_trace)
        assert vector.ipc > 0
        assert vector.epc > 0
        assert abs(vector.ipc - scalar.ipc) / scalar.ipc < 0.5
