"""Tests for the statistical flow graph data structure."""

import pytest

from repro.isa.iclass import IClass
from repro.core.sfg import (
    MAX_DEPENDENCY_DISTANCE,
    ContextStats,
    StatisticalFlowGraph,
)


def _stats(size=3):
    iclasses = [IClass.LOAD] + [IClass.INT_ALU] * (size - 2) \
        + [IClass.INT_COND_BRANCH]
    return ContextStats(iclasses, n_src=[1] * size)


class TestContextStats:
    def test_shape(self):
        stats = _stats(4)
        assert stats.block_size == 4
        assert len(stats.il1) == 4
        assert len(stats.dep_hists) == 4
        assert stats.outcome_counts == [0, 0, 0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ContextStats([], [])

    def test_dependency_recording(self):
        stats = _stats()
        stats.record_dependency(1, 0, 5)
        stats.record_dependency(1, 0, 5)
        stats.record_dependency(1, 0, 9)
        assert stats.dep_hists[1][0] == {5: 2, 9: 1}

    def test_dependency_cap(self):
        stats = _stats()
        stats.record_dependency(0, 0, 10_000)
        assert stats.dep_hists[0][0] == {MAX_DEPENDENCY_DISTANCE: 1}


class TestGraph:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            StatisticalFlowGraph(order=-1)

    def test_context_creation_and_reuse(self):
        sfg = StatisticalFlowGraph(order=1)
        a = sfg.context_for((0,), 1, [IClass.INT_COND_BRANCH], [1])
        b = sfg.context_for((0,), 1, [IClass.INT_COND_BRANCH], [1])
        assert a is b
        assert sfg.num_nodes == 1

    def test_context_size_mismatch_rejected(self):
        sfg = StatisticalFlowGraph(order=0)
        sfg.context_for((), 1, [IClass.INT_COND_BRANCH], [1])
        with pytest.raises(ValueError):
            sfg.context_for((), 1,
                            [IClass.INT_ALU, IClass.INT_COND_BRANCH],
                            [1, 1])

    def test_transition_probabilities(self):
        sfg = StatisticalFlowGraph(order=1)
        for _ in range(3):
            sfg.record_transition((0,), 1)
        sfg.record_transition((0,), 2)
        assert sfg.transition_probability((0,), 1) == pytest.approx(0.75)
        assert sfg.transition_probability((0,), 2) == pytest.approx(0.25)
        assert sfg.transition_probability((9,), 1) == 0.0

    def test_validate_catches_mass_mismatch(self):
        sfg = StatisticalFlowGraph(order=0)
        stats = sfg.context_for((), 0, [IClass.INT_COND_BRANCH], [1])
        stats.occurrences = 2
        sfg.total_block_executions = 1
        with pytest.raises(AssertionError):
            sfg.validate()

    def test_validate_passes_for_profiled_graph(self, tiny_trace,
                                                config):
        from repro.core.profiler import profile_trace

        profile = profile_trace(tiny_trace, config, order=1)
        profile.sfg.validate()

    def test_validate_checks_arity(self):
        sfg = StatisticalFlowGraph(order=1)
        stats = ContextStats([IClass.INT_COND_BRANCH], [1])
        sfg.contexts[(1, 2, 3)] = stats  # wrong arity for order 1
        with pytest.raises(AssertionError):
            sfg.validate()
