"""Failure minimization: shrinking power, validity, trial budget."""

from repro.frontend.functional import run_program
from repro.fuzz.generator import random_case
from repro.fuzz.minimize import minimize_program
from repro.isa.iclass import IClass
from repro.workloads.generator import WorkloadConfig, generate_program


def _big_program():
    return generate_program(WorkloadConfig(
        name="shrinkme", seed=17, n_blocks=24, mean_block_size=6))


class TestShrinkingPower:
    def test_always_failing_predicate_shrinks_below_quarter(self):
        program = _big_program()
        result = minimize_program(program, 2000,
                                  lambda prog, n: True)
        assert result.original_size == program.static_instruction_count
        assert result.minimized_size <= result.original_size // 4
        assert result.reduction <= 0.25
        # The reproducer is still a valid, runnable program.
        result.program.validate_reachability()
        run_program(result.program, 200)

    def test_trace_length_halved(self):
        result = minimize_program(_big_program(), 3200,
                                  lambda prog, n: True)
        assert result.n_instructions < 3200
        assert result.n_instructions >= 200

    def test_content_predicate_preserved(self):
        # The failure needs at least one load: minimization must keep
        # one while shrinking everything else.
        def needs_load(program, n):
            return any(inst.iclass is IClass.LOAD
                       for block in program.blocks
                       for inst in block.instructions)

        program = _big_program()
        assert needs_load(program, 0)
        result = minimize_program(program, 2000, needs_load)
        assert needs_load(result.program, 0)
        assert result.minimized_size < result.original_size


class TestRobustness:
    def test_never_failing_predicate_returns_original(self):
        program = _big_program()
        result = minimize_program(program, 2000,
                                  lambda prog, n: False)
        assert result.program is program
        assert result.minimized_size == result.original_size

    def test_raising_predicate_counts_as_not_failing(self):
        calls = []

        def flaky(program, n):
            calls.append(1)
            raise RuntimeError("trial blew up")

        program = _big_program()
        result = minimize_program(program, 2000, flaky)
        assert result.program is program
        assert calls  # trials ran, exceptions were contained

    def test_trial_budget_respected(self):
        counter = []

        def count(program, n):
            counter.append(1)
            return True

        minimize_program(_big_program(), 2000, count, max_trials=10)
        assert len(counter) <= 10

    def test_result_serializes(self):
        result = minimize_program(_big_program(), 2000,
                                  lambda prog, n: True)
        data = result.to_dict()
        assert data["minimized_size"] == result.minimized_size
        assert 0 < data["reduction"] <= 1
