"""Property-based tests of the pipeline over random slot streams.

These check conservation laws and monotonicity properties that must
hold for *any* instruction stream, complementing the targeted unit
tests of ``test_pipeline.py``.
"""

import random
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_config
from repro.isa.iclass import IClass, execution_latency
from repro.branch.unit import BranchOutcome
from repro.cpu.pipeline import simulate
from repro.cpu.source import FetchSlot, PreannotatedSource

_NON_BRANCH = [IClass.LOAD, IClass.STORE, IClass.INT_ALU,
               IClass.INT_MULT, IClass.INT_DIV, IClass.FP_ALU,
               IClass.FP_MULT]


def _random_slots(seed: int, n: int, mispredict_rate: float = 0.1):
    rng = random.Random(seed)
    slots = []
    for index in range(n):
        if rng.random() < 0.2:
            outcome = (BranchOutcome.MISPREDICTION
                       if rng.random() < mispredict_rate
                       else rng.choice((BranchOutcome.CORRECT,
                                        BranchOutcome.FETCH_REDIRECTION)))
            slots.append(FetchSlot(IClass.INT_COND_BRANCH,
                                   exec_latency=1,
                                   taken=rng.random() < 0.6,
                                   outcome=outcome))
            continue
        iclass = rng.choice(_NON_BRANCH)
        latency = execution_latency(iclass)
        if iclass is IClass.LOAD and rng.random() < 0.2:
            latency = rng.choice((20, 150))
        deps = tuple(rng.randint(1, 40)
                     for _ in range(rng.randint(0, 2)))
        stall = 20 if rng.random() < 0.01 else 0
        slots.append(FetchSlot(iclass, exec_latency=latency,
                               dep_distances=deps, fetch_stall=stall))
    return slots


class TestConservationProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 400))
    def test_every_instruction_commits_exactly_once(self, seed, n):
        slots = _random_slots(seed, n)
        result = simulate(baseline_config(), PreannotatedSource(slots))
        assert result.instructions == n

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(10, 300))
    def test_counters_are_consistent(self, seed, n):
        slots = _random_slots(seed, n)
        result = simulate(baseline_config(), PreannotatedSource(slots))
        expected_branches = sum(1 for s in slots if s.is_branch)
        assert result.branches == expected_branches
        assert result.branch_mispredictions == sum(
            1 for s in slots
            if s.outcome is BranchOutcome.MISPREDICTION)
        assert result.taken_branches == sum(
            1 for s in slots if s.is_branch and s.taken)
        assert 0 < result.cycles
        assert result.activity["commit"] == n
        # Every committed instruction was fetched, dispatched, issued.
        assert result.activity["fetch"] >= n
        assert result.activity["dispatch"] >= n
        assert result.activity["issue"] >= n

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(10, 300))
    def test_occupancies_within_bounds(self, seed, n):
        config = baseline_config()
        slots = _random_slots(seed, n)
        result = simulate(config, PreannotatedSource(slots))
        assert 0 <= result.avg_ruu_occupancy <= config.ruu_size
        assert 0 <= result.avg_lsq_occupancy <= config.lsq_size
        assert 0 <= result.avg_ifq_occupancy <= config.ifq_size

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(10, 300))
    def test_determinism(self, seed, n):
        slots = _random_slots(seed, n)
        a = simulate(baseline_config(), PreannotatedSource(list(slots)))
        b = simulate(baseline_config(), PreannotatedSource(list(slots)))
        assert a.cycles == b.cycles
        assert a.activity == b.activity


class TestMonotonicityProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_wider_machine_is_never_slower(self, seed):
        slots = _random_slots(seed, 300, mispredict_rate=0.0)
        narrow = replace(baseline_config(), decode_width=2,
                         issue_width=2, commit_width=2)
        wide = baseline_config()
        narrow_result = simulate(narrow, PreannotatedSource(list(slots)))
        wide_result = simulate(wide, PreannotatedSource(list(slots)))
        assert wide_result.cycles <= narrow_result.cycles

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bigger_window_is_never_slower(self, seed):
        slots = _random_slots(seed, 300, mispredict_rate=0.0)
        small = baseline_config().with_window(16, 8)
        large = baseline_config().with_window(128, 32)
        small_result = simulate(small, PreannotatedSource(list(slots)))
        large_result = simulate(large, PreannotatedSource(list(slots)))
        assert large_result.cycles <= small_result.cycles + 2

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_in_order_is_never_faster(self, seed):
        slots = _random_slots(seed, 300)
        config = baseline_config()
        in_order = replace(config, in_order_issue=True)
        ooo = simulate(config, PreannotatedSource(list(slots)))
        ino = simulate(in_order, PreannotatedSource(list(slots)))
        assert ino.cycles >= ooo.cycles - 2
