"""The health subsystem: policy parsing, budgets, the degradation
ladder, the vector canary, and their end-to-end wiring into sweeps.

Three integration properties anchor the suite: a blown deadline turns
into structured per-point failures (not a hung sweep), a hung worker
is shot by the supervisor's watchdog and its task requeued like a
crash, and a drifting vector canary degrades the sweep to the scalar
rung while keeping it green.
"""

import json
import time

import pytest

from repro.core.profiler import profile_trace
from repro.dse.engine import SweepEngine, evaluate_metrics
from repro.dse.space import DesignPoint
from repro.errors import (
    CanaryDriftError,
    DeadlineExceededError,
    HealthSpecError,
    MemoryBudgetError,
)
from repro.faults import ChaosPlan
from repro.health import (
    Budget,
    HealthPolicy,
    get_ladder,
    reset_ladder,
    rss_mb,
)
from repro.health.budget import active_budget, install_budget
from repro.health.canary import maybe_check_columnar
from repro.health.ladder import RUNGS
from repro.obs.metrics import get_registry


@pytest.fixture(scope="module")
def profile():
    from repro.config import baseline_config
    from repro.frontend.functional import run_program
    from repro.workloads.generator import WorkloadConfig, generate_program

    program = generate_program(WorkloadConfig(
        name="health", seed=7, n_blocks=12, mean_block_size=4,
        working_set_kb=32, n_memory_streams=4))
    trace = run_program(program, n_instructions=3000)
    return profile_trace(trace, baseline_config(), order=1)


@pytest.fixture
def points(config):
    return [DesignPoint(config=config.with_width(w),
                        params=(("width", w),))
            for w in (2, 4)]


class TestHealthPolicy:
    def test_parse_full_spec(self):
        policy = HealthPolicy.parse(
            "deadline=120;soft-rss=512;hard-rss=1024;hang-timeout=10;"
            "poll-interval=0.5;canary=16;canary-force=1")
        assert policy.deadline == 120.0
        assert policy.soft_rss_mb == 512.0
        assert policy.hard_rss_mb == 1024.0
        assert policy.hang_timeout == 10.0
        assert policy.poll_interval == 0.5
        assert policy.canary_interval == 16
        assert policy.canary_force is True

    def test_parse_empty_gives_defaults(self):
        policy = HealthPolicy.parse("")
        assert policy == HealthPolicy()
        assert policy.deadline is None
        assert policy.hang_timeout == 30.0

    def test_unknown_key_rejected(self):
        with pytest.raises(HealthSpecError):
            HealthPolicy.parse("deadlne=10")

    def test_bad_value_rejected(self):
        with pytest.raises(HealthSpecError):
            HealthPolicy.parse("deadline=ten")

    def test_not_key_value_rejected(self):
        with pytest.raises(HealthSpecError):
            HealthPolicy.parse("deadline")

    def test_negative_deadline_rejected(self):
        with pytest.raises(HealthSpecError):
            HealthPolicy(deadline=-1.0)

    def test_hard_below_soft_rejected(self):
        with pytest.raises(HealthSpecError):
            HealthPolicy(soft_rss_mb=512, hard_rss_mb=256)

    def test_spec_error_is_value_error(self):
        """CLI code catches ValueError for bad flags; the spec error
        must participate."""
        assert issubclass(HealthSpecError, ValueError)

    def test_payload_roundtrip(self):
        policy = HealthPolicy.parse("deadline=5;canary=3")
        assert HealthPolicy.from_payload(policy.to_payload()) == policy

    def test_with_deadline_overrides(self):
        policy = HealthPolicy.parse("deadline=120")
        assert policy.with_deadline(7.0).deadline == 7.0
        assert policy.with_deadline(None).deadline == 120.0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEALTH", "hang-timeout=0")
        assert HealthPolicy.from_env().hang_timeout == 0.0
        monkeypatch.delenv("REPRO_HEALTH")
        assert HealthPolicy.from_env() == HealthPolicy()


class TestRss:
    def test_rss_reads_positive_on_procfs(self):
        value = rss_mb()
        if value is None:
            pytest.skip("no procfs on this platform")
        assert value > 0


class TestBudget:
    def test_deadline_checkpoint_raises(self):
        budget = Budget(HealthPolicy(), deadline_at=time.time() - 1.0)
        before = get_registry().counter(
            "health.deadlines_exceeded").value
        with pytest.raises(DeadlineExceededError):
            budget.checkpoint()
        assert get_registry().counter(
            "health.deadlines_exceeded").value == before + 1

    def test_expired_predicate(self):
        assert Budget(HealthPolicy(),
                      deadline_at=time.time() - 1.0).expired()
        assert not Budget(HealthPolicy(),
                          deadline_at=time.time() + 60.0).expired()
        assert not Budget(HealthPolicy()).expired()

    def test_checkpoint_without_limits_is_silent(self):
        Budget(HealthPolicy()).checkpoint(123)  # must not raise

    def test_heartbeat_written_to_lease(self, tmp_path):
        budget = Budget(HealthPolicy())
        budget.begin_task(str(tmp_path), "exp/bench/p0/seed0",
                          dispatch=2)
        budget.checkpoint(4096)
        leases = list(tmp_path.glob("*.lease"))
        assert len(leases) == 1
        payload = json.loads(leases[0].read_text())
        assert payload["task_id"] == "exp/bench/p0/seed0"
        assert payload["dispatch"] == 2
        assert payload["progress"] == 4096
        assert payload["beat"] > 0

    def test_heartbeats_are_throttled(self, tmp_path):
        budget = Budget(HealthPolicy())
        budget.begin_task(str(tmp_path), "t", dispatch=1)
        budget.checkpoint(1)
        first = json.loads(
            next(tmp_path.glob("*.lease")).read_text())
        budget.checkpoint(2)  # within BEAT_INTERVAL: no rewrite
        second = json.loads(
            next(tmp_path.glob("*.lease")).read_text())
        assert second == first

    def test_end_task_stops_heartbeats(self, tmp_path):
        budget = Budget(HealthPolicy())
        budget.begin_task(str(tmp_path), "t", dispatch=1)
        budget.end_task()
        budget.checkpoint(1)
        assert list(tmp_path.glob("*.lease")) == []

    def test_hard_rss_ceiling_fails_cleanly(self):
        if rss_mb() is None:
            pytest.skip("no procfs on this platform")
        budget = Budget(HealthPolicy(hard_rss_mb=1.0))
        with pytest.raises(MemoryBudgetError):
            budget.checkpoint()

    def test_soft_rss_ceiling_degrades(self):
        if rss_mb() is None:
            pytest.skip("no procfs on this platform")
        budget = Budget(HealthPolicy(soft_rss_mb=1.0))
        budget.checkpoint()  # degrades, does not raise
        ladder = get_ladder()
        assert ladder.is_open("memory")
        assert ladder.is_open("vector")
        breaches = get_registry().counter(
            "health.rss_soft_breaches").value
        # One-shot: a second breach of the same budget is silent.
        budget._last_rss = 0.0
        budget.checkpoint()
        assert get_registry().counter(
            "health.rss_soft_breaches").value == breaches

    def test_module_checkpoint_noop_without_budget(self):
        from repro.health.budget import checkpoint

        install_budget(None)
        checkpoint(10)  # must not raise
        assert active_budget() is None


class TestLadder:
    def test_all_rungs_start_primary(self):
        snapshot = get_ladder().snapshot()
        assert set(snapshot) == set(RUNGS)
        for name, entry in snapshot.items():
            assert entry["rung"] == RUNGS[name][0]
            assert entry["degraded"] is False

    def test_trip_is_one_strike(self):
        ladder = get_ladder()
        assert ladder.trip("vector", reason="drift") is True
        assert ladder.is_open("vector")
        assert ladder.rung("vector") == "scalar"
        # Re-tripping an open breaker is a no-op.
        assert ladder.trip("vector", reason="again") is False
        assert ladder.snapshot()["vector"]["reason"] == "drift"

    def test_counted_breaker_honors_threshold(self):
        ladder = get_ladder()
        for _ in range(4):
            assert ladder.note_failure("cache", reason="io") is False
        assert not ladder.is_open("cache")
        assert ladder.note_failure("cache", reason="io") is True
        assert ladder.rung("cache") == "read-bypass"

    def test_success_resets_streak(self):
        ladder = get_ladder()
        for _ in range(4):
            ladder.note_failure("cache")
        ladder.note_success("cache")
        for _ in range(4):
            assert ladder.note_failure("cache") is False
        assert not ladder.is_open("cache")

    def test_open_breaker_never_closes(self):
        ladder = get_ladder()
        ladder.trip("pool", reason="broken")
        ladder.note_success("pool")
        assert ladder.is_open("pool")

    def test_trip_emits_counters_and_gauge(self):
        registry = get_registry()
        trips = registry.counter("health.breaker_trips").value
        changes = registry.counter("health.rung_changes").value
        get_ladder().trip("tables", reason="attach failed")
        assert registry.counter(
            "health.breaker_trips").value == trips + 1
        assert registry.counter(
            "health.rung_changes").value == changes + 1
        assert registry.gauge("health.rung.tables").value == 1

    def test_reset_gives_fresh_ladder(self):
        get_ladder().trip("vector")
        reset_ladder()
        assert not get_ladder().is_open("vector")


class TestCanary:
    def _columnar(self, profile):
        from repro.core.columnar import generate_columnar_trace

        return generate_columnar_trace(profile, reduction_factor=8.0,
                                       seed=3)

    def test_noop_without_budget(self, profile):
        install_budget(None)
        maybe_check_columnar(profile, self._columnar(profile))

    def test_noop_when_disabled(self, profile):
        install_budget(Budget(HealthPolicy()))  # canary_interval=0
        maybe_check_columnar(profile, self._columnar(profile))
        assert not get_ladder().is_open("vector")

    def test_healthy_columnar_passes(self, profile):
        install_budget(Budget(HealthPolicy(canary_interval=1)))
        checks = get_registry().counter("health.canary_checks").value
        maybe_check_columnar(profile, self._columnar(profile))
        assert get_registry().counter(
            "health.canary_checks").value == checks + 1
        assert not get_ladder().is_open("vector")

    def test_forced_drift_trips_vector(self, profile):
        install_budget(Budget(HealthPolicy(canary_interval=1,
                                           canary_force=True)))
        failures = get_registry().counter(
            "health.canary_failures").value
        with pytest.raises(CanaryDriftError) as excinfo:
            maybe_check_columnar(profile, self._columnar(profile))
        assert excinfo.value.retryable is True
        assert get_ladder().is_open("vector")
        assert get_registry().counter(
            "health.canary_failures").value == failures + 1

    def test_sampling_interval_respected(self, profile):
        install_budget(Budget(HealthPolicy(canary_interval=3)))
        checks = get_registry().counter("health.canary_checks").value
        columnar = self._columnar(profile)
        for _ in range(6):
            maybe_check_columnar(profile, columnar)
        assert get_registry().counter(
            "health.canary_checks").value == checks + 2


class TestEvaluateMetricsRungs:
    def test_mode_annotation(self, profile, config):
        scalar = evaluate_metrics(profile, config, seed=0,
                                  reduction_factor=4.0)
        vector = evaluate_metrics(profile, config, seed=0,
                                  reduction_factor=4.0, vector=True)
        assert scalar["mode"] == "scalar"
        assert vector["mode"] == "vector"

    def test_open_vector_breaker_routes_to_scalar(self, profile,
                                                  config):
        scalar = evaluate_metrics(profile, config, seed=0,
                                  reduction_factor=4.0)
        get_ladder().trip("vector", reason="test")
        degraded = evaluate_metrics(profile, config, seed=0,
                                    reduction_factor=4.0, vector=True)
        assert degraded == scalar

    def test_budget_does_not_perturb_determinism(self, profile,
                                                 config):
        """Checkpoints consume no RNG draws: metrics with an installed
        budget are byte-identical to metrics without one."""
        bare = evaluate_metrics(profile, config, seed=5,
                                reduction_factor=4.0, vector=True)
        install_budget(Budget(HealthPolicy(),
                              deadline_at=time.time() + 3600))
        budgeted = evaluate_metrics(profile, config, seed=5,
                                    reduction_factor=4.0, vector=True)
        assert budgeted == bare


class TestDeadlineSweep:
    def test_blown_deadline_fails_points_cleanly(self, profile,
                                                 points):
        engine = SweepEngine(profile, jobs=1,
                             health=HealthPolicy(deadline=1e-6))
        result = engine.evaluate(points, seeds=(0,),
                                 reduction_factor=4.0)
        assert result.failed == result.total_tasks == 2
        for point in result.results:
            assert not point.ok
            assert point.errors
            assert point.errors[0]["type"] == "DeadlineExceededError"
        # The parent's budget is uninstalled when the sweep returns.
        assert active_budget() is None

    def test_generous_deadline_changes_nothing(self, profile, points):
        plain = SweepEngine(profile, jobs=1).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        deadlined = SweepEngine(
            profile, jobs=1,
            health=HealthPolicy(deadline=3600)).evaluate(
                points, seeds=(0,), reduction_factor=4.0)
        for a, b in zip(plain.results, deadlined.results):
            assert a.per_seed == b.per_seed


class TestCanarySweepDegradation:
    def test_forced_drift_lands_sweep_green_on_scalar(self, profile,
                                                      points):
        """The acceptance drill: canary-force trips vector -> scalar on
        the first evaluation, the retry succeeds on the scalar rung,
        and the whole sweep finishes green."""
        engine = SweepEngine(
            profile, jobs=1, vector=True,
            health=HealthPolicy(canary_interval=1, canary_force=True))
        failures = get_registry().counter(
            "health.canary_failures").value
        result = engine.evaluate(points, seeds=(0,),
                                 reduction_factor=4.0)
        assert result.failed == 0
        assert all(point.ok for point in result.results)
        for point in result.results:
            for metrics in point.per_seed.values():
                assert metrics["mode"] == "scalar"
        assert get_registry().counter(
            "health.canary_failures").value > failures
        assert get_ladder().is_open("vector")

    def test_mode_annotation_survives_aggregation(self, profile,
                                                  points):
        result = SweepEngine(profile, jobs=1).evaluate(
            points, seeds=(0, 1), reduction_factor=4.0)
        for point in result.results:
            assert point.metrics["ipc"] > 0
            assert "mode" not in point.metrics  # strings don't average


class TestHangWatchdog:
    def test_hung_worker_is_killed_and_task_requeued(self, profile,
                                                     points):
        """worker-hang chaos parks the first dispatch of every task in
        a no-progress spin; the supervisor's heartbeat watchdog must
        SIGKILL the hung workers and requeue their tasks (dispatch 2,
        where attempts=1 chaos no longer fires) so the sweep completes
        without human intervention."""
        engine = SweepEngine(
            profile, jobs=2,
            fault_plan=ChaosPlan.parse(
                "worker-hang:rate=1.0,attempts=1"),
            health=HealthPolicy(hang_timeout=1.0, poll_interval=0.2))
        kills = get_registry().counter("health.hang_kills").value
        started = time.perf_counter()
        result = engine.evaluate(points, seeds=(0,),
                                 reduction_factor=4.0)
        elapsed = time.perf_counter() - started
        assert result.failed == 0
        assert result.quarantined == 0
        assert all(point.ok for point in result.results)
        assert get_registry().counter(
            "health.hang_kills").value > kills
        # Containment, not patience: the watchdog frees the sweep in
        # roughly hang_timeout, far under any per-task timeout.
        assert elapsed < 60

    def test_watchdog_disabled_leaves_healthy_sweeps_alone(
            self, profile, points):
        engine = SweepEngine(profile, jobs=2,
                             health=HealthPolicy(hang_timeout=0.0))
        result = engine.evaluate(points, seeds=(0,),
                                 reduction_factor=4.0)
        assert result.failed == 0
        assert all(point.ok for point in result.results)


class TestChaosSites:
    def test_mem_balloon_grows_ballast(self):
        from repro.faults import chaos

        plan = ChaosPlan.parse("mem-balloon:rate=1.0,attempts=1,mb=1")
        before = len(chaos._BALLAST)
        try:
            plan.maybe_balloon_memory("task", 1)
            assert len(chaos._BALLAST) == before + 1
            assert len(chaos._BALLAST[-1]) == 1024 * 1024
            # Second dispatch: attempts=1 keeps the site quiet.
            plan.maybe_balloon_memory("task", 2)
            assert len(chaos._BALLAST) == before + 1
        finally:
            del chaos._BALLAST[before:]

    def test_worker_hang_spec_roundtrip(self):
        plan = ChaosPlan.parse("worker-hang:rate=1.0,attempts=1")
        assert "worker-hang" in plan.to_spec()
