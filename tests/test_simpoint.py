"""Tests for the SimPoint baseline (BBVs, clustering, estimation)."""

import numpy as np
import pytest

from repro.baselines.simpoint import (
    SimPointSelection,
    _kmeans,
    basic_block_vectors,
    run_simpoint,
    select_simpoints,
)

import random


class TestBasicBlockVectors:
    def test_shapes(self, small_trace):
        vectors, pieces = basic_block_vectors(small_trace, interval=500)
        assert vectors.shape[0] == len(pieces) == len(small_trace) // 500
        assert vectors.shape[1] >= 1

    def test_rows_normalized(self, small_trace):
        vectors, _ = basic_block_vectors(small_trace, interval=500)
        for row in vectors:
            assert row.sum() == pytest.approx(1.0)

    def test_too_short_trace_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            basic_block_vectors(tiny_trace, interval=10_000)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = random.Random(0)
        a = np.random.RandomState(0).normal(0.0, 0.05, size=(20, 3))
        b = np.random.RandomState(1).normal(5.0, 0.05, size=(20, 3))
        data = np.vstack([a, b])
        labels, centers = _kmeans(data, k=2, rng=rng)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[20]

    def test_k_one(self):
        rng = random.Random(0)
        data = np.arange(12, dtype=float).reshape(6, 2)
        labels, centers = _kmeans(data, k=1, rng=rng)
        assert set(labels) == {0}
        assert centers.shape == (1, 2)


class TestSelection:
    def test_weights_sum_to_one(self, small_trace):
        selection = select_simpoints(small_trace, interval=500, max_k=3,
                                     seed=0)
        assert sum(selection.weights) == pytest.approx(1.0)
        assert len(selection.representatives) == len(selection.weights)
        assert selection.k >= 1

    def test_representatives_valid(self, small_trace):
        selection = select_simpoints(small_trace, interval=500, max_k=3,
                                     seed=0)
        n_intervals = len(small_trace) // 500
        for index in selection.representatives:
            assert 0 <= index < n_intervals

    def test_deterministic(self, small_trace):
        a = select_simpoints(small_trace, interval=500, max_k=3, seed=1)
        b = select_simpoints(small_trace, interval=500, max_k=3, seed=1)
        assert a.representatives == b.representatives
        assert a.weights == b.weights

    def test_simulated_instructions(self, small_trace):
        selection = select_simpoints(small_trace, interval=500, max_k=3,
                                     seed=0)
        assert selection.simulated_instructions == \
            len(selection.representatives) * 500


class TestRunSimPoint:
    def test_estimate_fields(self, small_trace, config):
        estimate = run_simpoint(small_trace, config, interval=500,
                                max_k=3, seed=0)
        assert estimate["ipc"] > 0
        assert estimate["epc"] > 0
        assert estimate["simulated_instructions"] <= len(small_trace)

    def test_estimate_in_reasonable_range(self, small_trace, config):
        from repro.core.framework import run_execution_driven

        full, _ = run_execution_driven(small_trace, config)
        estimate = run_simpoint(small_trace, config, interval=500,
                                max_k=4, seed=0)
        # SimPoint on a short cold trace is noisy, but not absurd.
        assert 0.3 * full.ipc < estimate["ipc"] < 3.0 * full.ipc
