"""Tests for the simulation result container."""

import pytest

from repro.cpu.results import SimulationResult


def _result(**kwargs):
    defaults = dict(cycles=100, instructions=150, avg_ruu_occupancy=10.0,
                    avg_lsq_occupancy=3.0, avg_ifq_occupancy=5.0)
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_ipc_cpi(self):
        result = _result()
        assert result.ipc == pytest.approx(1.5)
        assert result.cpi == pytest.approx(100 / 150)

    def test_zero_cycles(self):
        result = _result(cycles=0, instructions=0)
        assert result.ipc == 0.0

    def test_zero_instructions_cpi(self):
        assert _result(instructions=0).cpi == float("inf")

    def test_execution_bandwidth(self):
        result = _result(activity={"issue": 300})
        assert result.execution_bandwidth == pytest.approx(3.0)

    def test_mpki(self):
        result = _result(branch_mispredictions=3, instructions=1000)
        assert result.mispredictions_per_kilo_instruction == \
            pytest.approx(3.0)

    def test_occupancy_lookup(self):
        result = _result()
        assert result.occupancy("ruu") == 10.0
        assert result.occupancy("lsq") == 3.0
        assert result.occupancy("ifq") == 5.0
        with pytest.raises(ValueError):
            result.occupancy("rob")


class TestMetricsView:
    def test_occupancies_mapping(self):
        assert _result().occupancies == \
            {"ruu": 10.0, "lsq": 3.0, "ifq": 5.0}

    def test_to_metrics_flat_names(self):
        result = _result(branch_mispredictions=2,
                         squashed_instructions=9,
                         activity={"ialu": 80, "l1d": 25})
        metrics = result.to_metrics()
        assert metrics["pipeline.ipc"] == pytest.approx(1.5)
        assert metrics["pipeline.ruu_occupancy"] == 10.0
        assert metrics["pipeline.lsq_occupancy"] == 3.0
        assert metrics["pipeline.ifq_occupancy"] == 5.0
        assert metrics["pipeline.branch_mispredictions"] == 2.0
        assert metrics["pipeline.squashed_instructions"] == 9.0
        assert metrics["pipeline.activity.ialu"] == 80.0
        assert metrics["pipeline.activity.l1d"] == 25.0

    def test_pipeline_run_publishes_to_registry(self, tiny_trace,
                                                config):
        """An actual pipeline run lands its occupancies and counters in
        the process-wide registry."""
        from repro.core.framework import run_execution_driven
        from repro.obs.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            result, _power = run_execution_driven(tiny_trace, config)
        finally:
            set_registry(previous)
        snap = registry.snapshot()
        assert snap["counters"]["pipeline.runs"] == 1
        assert snap["counters"]["pipeline.cycles"] == result.cycles
        assert snap["gauges"]["pipeline.ruu_occupancy"] == \
            pytest.approx(result.avg_ruu_occupancy)
        assert snap["phases"]["simulate"]["count"] == 1
