"""Tests for the simulation result container."""

import pytest

from repro.cpu.results import SimulationResult


def _result(**kwargs):
    defaults = dict(cycles=100, instructions=150, avg_ruu_occupancy=10.0,
                    avg_lsq_occupancy=3.0, avg_ifq_occupancy=5.0)
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_ipc_cpi(self):
        result = _result()
        assert result.ipc == pytest.approx(1.5)
        assert result.cpi == pytest.approx(100 / 150)

    def test_zero_cycles(self):
        result = _result(cycles=0, instructions=0)
        assert result.ipc == 0.0

    def test_zero_instructions_cpi(self):
        assert _result(instructions=0).cpi == float("inf")

    def test_execution_bandwidth(self):
        result = _result(activity={"issue": 300})
        assert result.execution_bandwidth == pytest.approx(3.0)

    def test_mpki(self):
        result = _result(branch_mispredictions=3, instructions=1000)
        assert result.mispredictions_per_kilo_instruction == \
            pytest.approx(3.0)

    def test_occupancy_lookup(self):
        result = _result()
        assert result.occupancy("ruu") == 10.0
        assert result.occupancy("lsq") == 3.0
        assert result.occupancy("ifq") == 5.0
        with pytest.raises(ValueError):
            result.occupancy("rob")
