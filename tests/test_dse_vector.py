"""Vector-mode design-space sweeps: cache keying, shared-table
attachment, and serial/parallel agreement.

The columnar draw stream is statistically equivalent to the scalar one
but not identical, so the two modes must never share cache entries;
within one mode, serial and parallel sweeps must stay bit-identical
(the determinism contract the scalar engine already pins).
"""

import numpy as np
import pytest

from repro.core.profiler import profile_trace
from repro.dse.cache import ResultCache, result_key
from repro.dse.engine import SweepEngine, _worker_init, evaluate_metrics
from repro.dse.space import DesignPoint


@pytest.fixture
def profile(small_trace, config):
    return profile_trace(small_trace, config, order=1)


@pytest.fixture
def points(config):
    return [DesignPoint(config=config.with_width(w),
                        params=(("width", w),))
            for w in (2, 4)]


class TestResultKeyMode:
    def test_scalar_mode_preserves_existing_keys(self):
        """mode="scalar" must hash identically to the pre-mode key so
        every existing cache entry stays valid."""
        legacy = result_key("p", "c", 0, 6.0)
        assert result_key("p", "c", 0, 6.0, mode="scalar") == legacy

    def test_vector_mode_gets_distinct_keys(self):
        scalar = result_key("p", "c", 0, 6.0)
        vector = result_key("p", "c", 0, 6.0, mode="vector")
        assert vector != scalar

    def test_vector_keys_are_stable(self):
        assert result_key("p", "c", 0, 6.0, mode="vector") \
            == result_key("p", "c", 0, 6.0, mode="vector")


class TestEvaluateMetricsVector:
    def test_vector_metrics_differ_but_agree(self, profile, config):
        scalar = evaluate_metrics(profile, config, seed=0,
                                  reduction_factor=4.0)
        vector = evaluate_metrics(profile, config, seed=0,
                                  reduction_factor=4.0, vector=True)
        # Same synthetic length (same context multiset), different
        # draws, comparable IPC.
        assert vector["synthetic_instructions"] \
            == scalar["synthetic_instructions"]
        assert vector["ipc"] > 0
        assert abs(vector["ipc"] - scalar["ipc"]) / scalar["ipc"] < 0.5

    def test_vector_metrics_deterministic(self, profile, config):
        a = evaluate_metrics(profile, config, seed=7,
                             reduction_factor=4.0, vector=True)
        b = evaluate_metrics(profile, config, seed=7,
                             reduction_factor=4.0, vector=True)
        assert a == b


class TestVectorSweep:
    def test_serial_and_parallel_metrics_identical(self, profile,
                                                   points):
        serial = SweepEngine(profile, jobs=1, vector=True).evaluate(
            points, seeds=(0, 1), reduction_factor=4.0)
        parallel = SweepEngine(profile, jobs=2, vector=True).evaluate(
            points, seeds=(0, 1), reduction_factor=4.0)
        for s, p in zip(serial.results, parallel.results):
            assert s.per_seed == p.per_seed

    def test_modes_do_not_share_cache_entries(self, profile, points,
                                              tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        scalar = SweepEngine(profile, jobs=1, cache=cache).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert scalar.evaluated == 2 and scalar.cached == 0

        vector_first = SweepEngine(
            profile, jobs=1, cache=cache, vector=True).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        # The scalar entries must NOT satisfy vector lookups.
        assert vector_first.cached == 0
        assert vector_first.evaluated == 2

        vector_again = SweepEngine(
            profile, jobs=1, cache=cache, vector=True).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert vector_again.cached == 2
        assert vector_again.evaluated == 0

        scalar_again = SweepEngine(profile, jobs=1,
                                   cache=cache).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert scalar_again.cached == 2


class TestWorkerInit:
    def test_worker_attaches_published_tables(self, profile,
                                              monkeypatch):
        """_worker_init with a tables descriptor attaches the shared
        segment, adopts it for the profile's SFG, and counts the hit
        (``dse.shared_tables_attached``)."""
        import repro.dse.engine as engine_mod
        from repro.core.columnar import (columnar_tables_cached,
                                         columnar_tables_for)
        from repro.core.serialization import profile_to_dict
        from repro.core.shm_tables import publish_tables
        from repro.obs.metrics import get_registry

        published = publish_tables(columnar_tables_for(profile.sfg))
        counter = get_registry().counter("dse.shared_tables_attached")
        before = counter.value
        try:
            _worker_init(profile_to_dict(profile),
                         tables_descriptor=published.descriptor)
            assert counter.value == before + 1
            worker_profile = engine_mod._WORKER_PROFILE
            assert columnar_tables_cached(worker_profile.sfg)
            # The adopted tables came from the shared blob, not a
            # local rebuild: their arrays are read-only views.
            tables = columnar_tables_for(worker_profile.sfg)
            assert not tables.iclass.flags.writeable
        finally:
            published.unlink()

    def test_worker_survives_vanished_segment(self, profile):
        """A descriptor whose segment is already gone degrades to a
        local build instead of crashing worker startup."""
        from repro.core.serialization import profile_to_dict

        _worker_init(profile_to_dict(profile),
                     tables_descriptor={"kind": "shm",
                                        "name": "psm_never_existed",
                                        "size": 64})
