"""Golden-file determinism regression test.

The hot-path overhaul (alias/guide-table samplers, the event-driven
pipeline) must be *draw-for-draw* and *cycle-for-cycle* equivalent to
the original implementation: the golden files in ``tests/golden/`` were
generated with the pre-overhaul code, so the same profile + seed must
still produce a byte-identical synthetic trace and an identical
:class:`SimulationResult` after any rewrite.

Regenerate (only when an *intentional* behaviour change is shipped)
with::

    PYTHONPATH=src python tests/test_determinism_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.config import baseline_config
from repro.core.framework import simulate_synthetic_trace
from repro.core.profiler import profile_trace
from repro.core.synthesis import generate_synthetic_trace
from repro.frontend.warming import run_program_with_warmup
from repro.workloads.spec import build_benchmark

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The example workload the goldens pin: small enough to keep the files
#: reviewable, large enough to exercise restarts, dead ends, rejected
#: dependency draws, mispredictions and fetch redirections.
BENCHMARK = "gzip"
WARMUP = 2_000
REFERENCE = 6_000
ORDER = 1
REDUCTION_FACTOR = 8.0
SEEDS = (0, 1)


def _build_profile():
    config = baseline_config()
    warm, trace = run_program_with_warmup(
        build_benchmark(BENCHMARK), warmup=WARMUP,
        n_instructions=REFERENCE)
    profile = profile_trace(trace, config, order=ORDER,
                            branch_mode="delayed", warmup_trace=warm)
    return profile, config


def _trace_payload(synthetic):
    """Canonical JSON form of a synthetic trace (byte-stable)."""
    return [
        [inst.iclass.name, list(inst.dep_distances),
         int(inst.il1_miss), int(inst.l2i_miss), int(inst.itlb_miss),
         int(inst.dl1_miss), int(inst.l2d_miss), int(inst.dtlb_miss),
         int(inst.taken),
         inst.outcome.name if inst.outcome is not None else None]
        for inst in synthetic.instructions
    ]


def _result_payload(result):
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "avg_ruu_occupancy": result.avg_ruu_occupancy,
        "avg_lsq_occupancy": result.avg_lsq_occupancy,
        "avg_ifq_occupancy": result.avg_ifq_occupancy,
        "activity": dict(result.activity),
        "branches": result.branches,
        "taken_branches": result.taken_branches,
        "fetch_redirections": result.fetch_redirections,
        "branch_mispredictions": result.branch_mispredictions,
        "squashed_instructions": result.squashed_instructions,
    }


def _case_payload(profile, config, seed):
    synthetic = generate_synthetic_trace(profile, REDUCTION_FACTOR,
                                         seed=seed)
    result, _power = simulate_synthetic_trace(synthetic, config)
    return {
        "benchmark": BENCHMARK,
        "warmup": WARMUP,
        "reference": REFERENCE,
        "order": ORDER,
        "reduction_factor": REDUCTION_FACTOR,
        "seed": seed,
        "trace": _trace_payload(synthetic),
        "result": _result_payload(result),
    }


def _golden_path(seed: int) -> Path:
    return GOLDEN_DIR / f"determinism_{BENCHMARK}_seed{seed}.json"


@pytest.fixture(scope="module")
def profile_and_config():
    return _build_profile()


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_and_result_match_golden(profile_and_config, seed):
    path = _golden_path(seed)
    assert path.exists(), (
        f"golden file {path} missing; regenerate with "
        f"'PYTHONPATH=src python tests/test_determinism_golden.py'")
    golden = json.loads(path.read_text())
    profile, config = profile_and_config
    current = _case_payload(profile, config, seed)
    assert current["trace"] == golden["trace"], (
        "synthetic trace diverged from the pre-overhaul golden "
        f"(seed {seed}): same profile + seed no longer reproduces the "
        "same instruction stream")
    assert current["result"] == golden["result"], (
        f"SimulationResult diverged from the golden (seed {seed})")


@pytest.mark.parametrize("seed", SEEDS)
def test_repeat_run_is_byte_identical(profile_and_config, seed):
    """Two in-process runs serialize to the same bytes (no hidden
    global state in the sampler caches)."""
    profile, config = profile_and_config
    first = json.dumps(_case_payload(profile, config, seed),
                       sort_keys=True)
    second = json.dumps(_case_payload(profile, config, seed),
                        sort_keys=True)
    assert first == second


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    profile, config = _build_profile()
    for seed in SEEDS:
        path = _golden_path(seed)
        payload = _case_payload(profile, config, seed)
        path.write_text(json.dumps(payload, sort_keys=True,
                                   separators=(",", ":")) + "\n")
        print(f"wrote {path} ({len(payload['trace'])} instructions, "
              f"{payload['result']['cycles']} cycles)")


if __name__ == "__main__":
    regenerate()
