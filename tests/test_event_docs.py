"""docs/observability.md vs the source: the inventories may not drift.

The doc's event and metric catalogs are delimited by HTML-comment
markers; this test scans ``src/repro`` for every literally-emitted
event name and every registered metric name and fails — in either
direction — when the two sets disagree.  Dynamic name segments
(f-string interpolations) normalize to ``<>`` on both sides.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
DOC = ROOT / "docs" / "observability.md"

EVENT_PATTERNS = (
    # events.emit("name", ...) / obs.emit("name", ...)
    re.compile(r'\bemit\(\s*"([a-z0-9_.]+)"'),
    # obs.warn(..., event="name") and friends
    re.compile(r'\bevent="([a-z0-9_.]+)"'),
)
METRIC_PATTERN = re.compile(
    r'\.(counter|gauge|histogram)\(\s*(f?)"([^"]+)"')
DOC_ENTRY = re.compile(r"^- `([a-z0-9_.<>]+)`", re.MULTILINE)


def _doc_region(marker: str) -> str:
    text = DOC.read_text()
    begin = text.index(f"<!-- {marker}:begin -->")
    end = text.index(f"<!-- {marker}:end -->")
    return text[begin:end]


def documented(marker: str) -> set:
    names = set(DOC_ENTRY.findall(_doc_region(marker)))
    # Readable placeholders like `<site>` normalize to `<>`.
    return {re.sub(r"<[a-z_]*>", "<>", name) for name in names}


def scan_events() -> set:
    names = set()
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for pattern in EVENT_PATTERNS:
            names.update(pattern.findall(text))
    return names


def scan_metrics() -> set:
    names = set()
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for _kind, fprefix, name in METRIC_PATTERN.findall(text):
            if fprefix:
                name = re.sub(r"\{[^}]*\}", "<>", name)
            names.add(name)
    # Built by concatenation (PHASE_PREFIX + span.phase) in tracing.py,
    # invisible to the literal scan.
    names.add("phase.<>")
    return names


class TestEventCatalog:
    def test_scan_finds_a_plausible_inventory(self):
        events = scan_events()
        assert len(events) > 30
        assert "run_start" in events and "unit_retry" in events

    def test_every_emitted_event_is_documented(self):
        missing = scan_events() - documented("events")
        assert not missing, (
            f"events emitted in src/ but absent from "
            f"docs/observability.md: {sorted(missing)}")

    def test_every_documented_event_is_emitted(self):
        stale = documented("events") - scan_events()
        assert not stale, (
            f"events documented in docs/observability.md but never "
            f"emitted in src/: {sorted(stale)}")


class TestMetricCatalog:
    def test_scan_finds_a_plausible_inventory(self):
        metrics = scan_metrics()
        assert len(metrics) > 30
        assert "dse.evaluated" in metrics
        assert "pipeline.activity.<>" in metrics

    def test_every_registered_metric_is_documented(self):
        missing = scan_metrics() - documented("metrics")
        assert not missing, (
            f"metrics registered in src/ but absent from "
            f"docs/observability.md: {sorted(missing)}")

    def test_every_documented_metric_is_registered(self):
        stale = documented("metrics") - scan_metrics()
        assert not stale, (
            f"metrics documented in docs/observability.md but never "
            f"registered in src/: {sorted(stale)}")
