"""Tests for conservative memory disambiguation."""

from dataclasses import replace

from repro.config import baseline_config
from repro.isa.iclass import IClass
from repro.cpu.pipeline import simulate
from repro.cpu.source import ExecutionDrivenSource, FetchSlot, \
    PreannotatedSource


def _slots_store_then_loads(store_latency=1):
    slots = []
    for _ in range(50):
        slots.append(FetchSlot(IClass.STORE,
                               exec_latency=store_latency))
        slots.extend(FetchSlot(IClass.LOAD, exec_latency=2)
                     for _ in range(4))
    return slots


class TestConservativeLoads:
    def test_never_faster(self, small_trace, config):
        conservative = replace(config, conservative_loads=True)
        fast = simulate(config,
                        ExecutionDrivenSource(small_trace, config))
        slow = simulate(conservative,
                        ExecutionDrivenSource(small_trace, conservative))
        assert slow.ipc <= fast.ipc + 1e-9
        assert slow.instructions == fast.instructions

    def test_late_store_blocks_following_load_chain(self):
        # A store waits on a 20-cycle divide; a load chain follows.
        # Speculatively, the chain starts immediately; conservatively
        # it starts only after the store executes.
        def group():
            slots = [FetchSlot(IClass.INT_DIV, exec_latency=20),
                     FetchSlot(IClass.STORE, exec_latency=1,
                               dep_distances=(1,)),
                     FetchSlot(IClass.LOAD, exec_latency=2)]
            slots.extend(FetchSlot(IClass.INT_ALU, exec_latency=1,
                                   dep_distances=(1,)) for _ in range(5))
            return slots

        slots = [slot for _ in range(10) for slot in group()]
        config = baseline_config()
        conservative = replace(config, conservative_loads=True)
        fast = simulate(config, PreannotatedSource(list(slots)))
        slow = simulate(conservative, PreannotatedSource(list(slots)))
        assert slow.cycles > fast.cycles

    def test_fast_stores_cost_little(self):
        config = baseline_config()
        conservative = replace(config, conservative_loads=True)
        slots = _slots_store_then_loads(store_latency=1)
        fast = simulate(config, PreannotatedSource(list(slots)))
        slow = simulate(conservative, PreannotatedSource(list(slots)))
        assert slow.cycles < fast.cycles * 2

    def test_loads_without_stores_unaffected(self):
        config = baseline_config()
        conservative = replace(config, conservative_loads=True)
        slots = [FetchSlot(IClass.LOAD, exec_latency=2)
                 for _ in range(200)]
        fast = simulate(config, PreannotatedSource(list(slots)))
        slow = simulate(conservative, PreannotatedSource(list(slots)))
        assert slow.cycles == fast.cycles
