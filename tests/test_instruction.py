"""Unit tests for static/dynamic instruction representations."""

import pytest

from repro.isa.iclass import IClass
from repro.isa.instruction import DynamicInstruction, StaticInstruction


class TestStaticInstruction:
    def test_basic_alu(self):
        inst = StaticInstruction(IClass.INT_ALU, src_regs=(1, 2), dst_reg=3)
        assert inst.produces_register
        assert not inst.is_branch
        assert not inst.is_load
        assert not inst.is_store

    def test_load_with_stream(self):
        inst = StaticInstruction(IClass.LOAD, src_regs=(1,), dst_reg=2,
                                 mem_stream=0)
        assert inst.is_load
        assert inst.mem_stream == 0

    def test_store_has_no_destination(self):
        with pytest.raises(ValueError):
            StaticInstruction(IClass.STORE, src_regs=(1, 2), dst_reg=3)

    def test_branch_has_no_destination(self):
        with pytest.raises(ValueError):
            StaticInstruction(IClass.INT_COND_BRANCH, src_regs=(1,),
                              dst_reg=2)

    def test_branch_flag(self):
        inst = StaticInstruction(IClass.INDIRECT_BRANCH, src_regs=(1,))
        assert inst.is_branch
        assert not inst.produces_register

    def test_frozen(self):
        inst = StaticInstruction(IClass.INT_ALU, src_regs=(), dst_reg=1)
        with pytest.raises(AttributeError):
            inst.dst_reg = 5


class TestDynamicInstruction:
    def test_fields(self):
        inst = DynamicInstruction(seq=7, pc=0x1000, iclass=IClass.LOAD,
                                  bb_id=3, src_regs=(1,), dst_reg=2,
                                  mem_addr=0xCAFE)
        assert inst.seq == 7
        assert inst.is_load
        assert not inst.is_branch
        assert inst.mem_addr == 0xCAFE

    def test_branch_outcome_fields(self):
        inst = DynamicInstruction(seq=0, pc=0x1000,
                                  iclass=IClass.INT_COND_BRANCH,
                                  bb_id=0, taken=True, target=0x2000)
        assert inst.is_branch
        assert inst.taken
        assert inst.target == 0x2000

    def test_slots_prevent_arbitrary_attributes(self):
        inst = DynamicInstruction(0, 0, IClass.INT_ALU, 0)
        with pytest.raises(AttributeError):
            inst.bogus = 1

    def test_repr_mentions_class(self):
        inst = DynamicInstruction(0, 0x1000, IClass.FP_MULT, 2)
        assert "FP_MULT" in repr(inst)
