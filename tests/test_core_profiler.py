"""Tests for statistical profiling (paper section 2.1) on analytically
checkable programs."""

import pytest

from repro.isa.iclass import IClass
from repro.frontend.functional import run_program
from repro.core.profiler import profile_trace
from repro.core.sfg import START_BLOCK

from conftest import make_tiny_program


@pytest.fixture
def tiny_profile(tiny_trace, config):
    return profile_trace(tiny_trace, config, order=1)


class TestStructure:
    def test_contexts_of_tiny_loop(self, tiny_profile):
        # Block sequence: 0 0 0 0 1 | 0 0 0 0 1 ... (trip 4).
        # Order-1 contexts: (0,0), (0,1), (1,0) and the start (-1,0).
        keys = set(tiny_profile.sfg.contexts)
        assert (0, 0) in keys
        assert (0, 1) in keys
        assert (1, 0) in keys
        assert (START_BLOCK, 0) in keys
        assert len(keys) == 4

    def test_occurrence_counts(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        sfg = profile.sfg
        blocks = tiny_trace.basic_block_sequence()
        assert sfg.total_block_executions == len(blocks)
        # (0,0) occurs 3 times per 5-block period (trip 4).
        period_count = blocks.count(0) + blocks.count(1)
        occ = sfg.contexts[(0, 0)].occurrences
        assert occ == sum(1 for a, b in zip(blocks, blocks[1:])
                          if (a, b) == (0, 0))

    def test_transition_probabilities(self, tiny_profile):
        sfg = tiny_profile.sfg
        # From block 0 the loop continues 3 of 4 times.
        p_loop = sfg.transition_probability((0,), 0)
        assert 0.7 < p_loop < 0.8
        assert sfg.transition_probability((1,), 0) == 1.0

    def test_order_zero_contexts_are_blocks(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=0)
        assert set(profile.sfg.contexts) == {(0,), (1,)}

    def test_higher_order_grows_contexts(self, small_trace, config):
        nodes = [profile_trace(small_trace, config, order=k,
                               branch_mode="perfect",
                               perfect_caches=True).num_nodes
                 for k in (0, 1, 2)]
        assert nodes[0] <= nodes[1] <= nodes[2]

    def test_partial_trailing_block_dropped(self, tiny_program, config):
        # 7 instructions = 2 full blocks (3+3) + 1 trailing instruction.
        trace = run_program(tiny_program, n_instructions=7)
        profile = profile_trace(trace, config, order=0)
        assert profile.sfg.total_block_executions == 2

    def test_instruction_types_recorded(self, tiny_profile):
        stats = tiny_profile.sfg.contexts[(0, 0)]
        assert stats.iclasses == [IClass.LOAD, IClass.INT_ALU,
                                  IClass.INT_COND_BRANCH]
        assert stats.n_src == [1, 1, 1]


class TestDependencies:
    def test_intra_block_distances(self, tiny_profile):
        stats = tiny_profile.sfg.contexts[(0, 0)]
        # Slot 1 (alu) reads r1 written by slot 0 (load): distance 1.
        assert set(stats.dep_hists[1][0]) == {1}
        # Slot 2 (branch) reads r2 written by slot 1: distance 1.
        assert set(stats.dep_hists[2][0]) == {1}

    def test_cross_block_distance(self, tiny_profile):
        # Block 1 slot 0 reads r2, written by the alu two dynamic
        # instructions earlier (in block 0).
        stats = tiny_profile.sfg.contexts[(0, 1)]
        assert set(stats.dep_hists[0][0]) == {2}

    def test_first_read_unrecorded(self, tiny_profile):
        # The load reads r4 which nothing ever writes.
        stats = tiny_profile.sfg.contexts[(0, 0)]
        assert stats.dep_hists[0][0] == {}


class TestLocalityAnnotations:
    def test_perfect_caches_no_events(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1,
                                perfect_caches=True)
        for stats in profile.sfg.contexts.values():
            assert sum(stats.il1) == 0
            assert sum(stats.dl1) == 0

    def test_cache_events_recorded(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        total_il1 = sum(sum(stats.il1)
                        for stats in profile.sfg.contexts.values())
        # Cold start guarantees at least one instruction miss.
        assert total_il1 >= 1

    def test_load_events_only_on_load_slots(self, tiny_profile):
        for stats in tiny_profile.sfg.contexts.values():
            for slot, iclass in enumerate(stats.iclasses):
                if iclass is not IClass.LOAD:
                    assert stats.dl1[slot] == 0
                    assert stats.l2d[slot] == 0
                    assert stats.dtlb[slot] == 0

    def test_branch_outcomes_sum_to_occurrences(self, tiny_profile):
        for stats in tiny_profile.sfg.contexts.values():
            assert sum(stats.outcome_counts) == stats.occurrences

    def test_taken_counts(self, tiny_profile):
        # Block 1's branch is always taken (pattern "T").
        stats = tiny_profile.sfg.contexts[(0, 1)]
        assert stats.taken == stats.occurrences

    def test_perfect_branch_mode(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1,
                                branch_mode="perfect")
        for stats in profile.sfg.contexts.values():
            correct, redirect, mispredict = stats.outcome_counts
            assert redirect == 0 and mispredict == 0


class TestModes:
    def test_invalid_branch_mode(self, tiny_trace, config):
        with pytest.raises(ValueError):
            profile_trace(tiny_trace, config, branch_mode="bogus")

    def test_invalid_order(self, tiny_trace, config):
        with pytest.raises(ValueError):
            profile_trace(tiny_trace, config, order=-1)

    def test_metadata(self, tiny_profile, tiny_trace):
        assert tiny_profile.name == tiny_trace.name
        assert tiny_profile.order == 1
        assert tiny_profile.trace_instructions == len(tiny_trace)
        assert tiny_profile.branch_mode == "delayed"

    def test_warmup_changes_cache_annotations(self, tiny_program,
                                              config):
        from repro.frontend.warming import run_program_with_warmup

        warm, trace = run_program_with_warmup(tiny_program, warmup=400,
                                              n_instructions=300)
        cold = profile_trace(trace, config, order=1)
        warmed = profile_trace(trace, config, order=1, warmup_trace=warm)
        cold_misses = sum(sum(s.il1) + sum(s.dl1)
                          for s in cold.sfg.contexts.values())
        warm_misses = sum(sum(s.il1) + sum(s.dl1)
                          for s in warmed.sfg.contexts.values())
        assert warm_misses <= cold_misses
