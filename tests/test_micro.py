"""Tests validating the simulators against analytically known
microbenchmarks."""

import pytest

from repro.config import baseline_config
from repro.core.framework import run_execution_driven
from repro.frontend.functional import run_program
from repro.workloads.micro import (
    MICROBENCHMARKS,
    branch_torture_kernel,
    build_microbenchmark,
    independent_alu_kernel,
    loop_nest_kernel,
    microbenchmark_names,
    pointer_chase_kernel,
    serial_chain_kernel,
    streaming_kernel,
)


def _ipc(program, n=20_000, **eds_kwargs):
    config = baseline_config()
    trace = run_program(program, n_instructions=n, warmup=4000)
    result, _ = run_execution_driven(trace, config, **eds_kwargs)
    return result


class TestRegistry:
    def test_names(self):
        assert set(microbenchmark_names()) == set(MICROBENCHMARKS)
        assert len(MICROBENCHMARKS) == 6

    def test_build_by_name(self):
        program = build_microbenchmark("serial-chain", block_size=8)
        assert program.name == "micro/serial-chain"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_microbenchmark("matrix-multiply")


class TestAnalyticExpectations:
    def test_independent_alu_reaches_high_ipc(self):
        result = _ipc(independent_alu_kernel(block_size=16))
        # 8-wide machine, no deps, no misses: IPC well above half width.
        assert result.ipc > 4.0

    def test_serial_chain_caps_near_one(self):
        result = _ipc(serial_chain_kernel(block_size=16))
        assert result.ipc < 1.3

    def test_independent_beats_serial(self):
        independent = _ipc(independent_alu_kernel(block_size=16))
        serial = _ipc(serial_chain_kernel(block_size=16))
        assert independent.ipc > 2.5 * serial.ipc

    def test_pointer_chase_serializes_memory(self):
        config = baseline_config()
        result = _ipc(pointer_chase_kernel(working_set_kb=512,
                                           chain_loads=4), n=5000)
        # Each block: 4 serial loads (mostly L2-or-worse) + a branch.
        # IPC must sit far below 1 — the chain hides nothing.
        assert result.ipc < 5 / config.l2.hit_latency * 2.5

    def test_streaming_faster_than_chase(self):
        streaming = _ipc(streaming_kernel(array_kb=256), n=10_000)
        chase = _ipc(pointer_chase_kernel(working_set_kb=512), n=5000)
        assert streaming.ipc > 2 * chase.ipc

    def test_branch_torture_misprediction_rate(self):
        result = _ipc(branch_torture_kernel(p_taken=0.5), n=10_000)
        # Half the instructions are unpredictable branches: the
        # misprediction rate per branch approaches ~0.5.
        per_branch = result.branch_mispredictions / result.branches
        assert 0.3 < per_branch < 0.6

    def test_branch_torture_dominated_by_recovery(self):
        tortured = _ipc(branch_torture_kernel(p_taken=0.5), n=10_000)
        predictable = _ipc(branch_torture_kernel(p_taken=0.999),
                           n=10_000)
        assert predictable.ipc > 3 * tortured.ipc

    def test_loop_nest_block_frequencies(self):
        program = loop_nest_kernel(inner_trips=16, outer_trips=64)
        trace = run_program(program, n_instructions=20_000, warmup=1000)
        counts = trace.basic_block_counts()
        # The inner block executes inner_trips times per outer visit.
        ratio = counts[0] / counts[1]
        assert 14 < ratio < 18

    def test_loop_nest_highly_predictable(self):
        result = _ipc(loop_nest_kernel(), n=20_000)
        # Tight 3-instruction loop bodies keep the local history
        # stale (delayed update), so exits mispredict: ~1 exit per 17
        # branches over 4-instruction average spacing.
        assert result.mispredictions_per_kilo_instruction < 30.0


class TestStatisticalSimulationOnMicros:
    @pytest.mark.parametrize("name", ["serial-chain", "streaming",
                                      "loop-nest"])
    def test_ss_tracks_eds(self, name):
        from repro.core.framework import run_statistical_simulation
        from repro.frontend.warming import run_program_with_warmup

        config = baseline_config()
        program = build_microbenchmark(name)
        warm, trace = run_program_with_warmup(program, 5000, 10_000)
        reference, _ = run_execution_driven(trace, config,
                                            warmup_trace=warm)
        report = run_statistical_simulation(trace, config,
                                            reduction_factor=4, seed=0,
                                            warmup_trace=warm)
        error = abs(report.ipc - reference.ipc) / reference.ipc
        # Single-context kernels expose the methodology's i.i.d. miss
        # sampling (real misses are periodic), so the bound is looser
        # than for the mixed workloads of Figure 6.
        assert error < 0.25, f"{name}: {error:.3f}"
