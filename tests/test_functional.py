"""Tests for the functional simulator and warm windows."""

from repro.frontend.functional import FunctionalSimulator, run_program
from repro.frontend.warming import run_program_with_warmup
from repro.isa.iclass import IClass

from conftest import make_tiny_program


class TestFunctionalSimulator:
    def test_trace_length(self, tiny_program):
        trace = run_program(tiny_program, n_instructions=100)
        assert len(trace) == 100

    def test_sequence_numbers_dense(self, tiny_trace):
        assert [inst.seq for inst in tiny_trace] == \
            list(range(len(tiny_trace)))

    def test_tiny_program_block_pattern(self, tiny_program):
        # Loop body (block 0) executes trip_count times per exit visit.
        trace = run_program(tiny_program, n_instructions=3 * 4 + 2)
        blocks = trace.basic_block_sequence()
        assert blocks == [0, 0, 0, 0, 1][:len(blocks)]

    def test_branch_targets_match_blocks(self, tiny_program):
        trace = run_program(tiny_program, n_instructions=200)
        instructions = trace.instructions
        for i, inst in enumerate(instructions[:-1]):
            if inst.is_branch:
                assert inst.target == instructions[i + 1].pc

    def test_taken_flag_consistent_with_control_flow(self, tiny_program):
        trace = run_program(tiny_program, n_instructions=200)
        for inst in trace:
            if inst.is_branch and inst.iclass is IClass.INT_COND_BRANCH:
                block = tiny_program.blocks[inst.bb_id]
                expected = (tiny_program.blocks[block.taken_target].address
                            if inst.taken else
                            tiny_program.blocks[block.fallthrough].address)
                assert inst.target == expected

    def test_loads_have_addresses(self, tiny_trace):
        for inst in tiny_trace:
            if inst.is_load or inst.is_store:
                assert inst.mem_addr is not None
            else:
                assert inst.mem_addr is None

    def test_pc_matches_block_layout(self, tiny_program):
        trace = run_program(tiny_program, n_instructions=50)
        for inst in trace:
            block = tiny_program.blocks[inst.bb_id]
            offset = (inst.pc - block.address) // 8
            assert 0 <= offset < block.size

    def test_reset_replays(self, tiny_program):
        sim = FunctionalSimulator(tiny_program)
        first = [inst.pc for inst in sim.run(100)]
        sim.reset()
        second = [inst.pc for inst in sim.run(100)]
        assert first == second

    def test_run_resumes_where_it_stopped(self, tiny_program):
        sim = FunctionalSimulator(tiny_program)
        part1 = [inst.pc for inst in sim.run(60)]
        part2 = [inst.pc for inst in sim.run(60)]
        sim.reset()
        whole = [inst.pc for inst in sim.run(120)]
        assert part1 + part2 == whole


class TestWarmup:
    def test_run_program_warmup_renumbers(self, tiny_program):
        trace = run_program(tiny_program, n_instructions=50, warmup=30)
        assert [inst.seq for inst in trace] == list(range(50))

    def test_warmup_is_contiguous(self, tiny_program):
        warm, measured = run_program_with_warmup(tiny_program, warmup=40,
                                                 n_instructions=40)
        total = len(warm) + len(measured)
        full = run_program(tiny_program, n_instructions=total)
        assert [i.pc for i in warm] + [i.pc for i in measured] == \
            [i.pc for i in full]

    def test_warmup_trace_named(self, tiny_program):
        warm, measured = run_program_with_warmup(tiny_program, warmup=10,
                                                 n_instructions=10)
        assert "warmup" in warm.name
        assert measured.name == tiny_program.name
