"""Tests for the Wattch-style power model."""

import pytest

from repro.config import baseline_config
from repro.cpu.results import SimulationResult
from repro.power.wattch import (
    IDLE_FRACTION,
    PowerBreakdown,
    WattchPowerModel,
    energy_delay_product,
)


def _result(cycles=1000, instructions=1000, ruu=20.0, lsq=5.0, ifq=10.0,
            **activity):
    base = {"fetch": 0, "dispatch": 0, "issue": 0, "commit": 0,
            "bpred": 0, "il1": 0, "dl1": 0, "l2": 0, "int_alu": 0,
            "load_store": 0, "fp_adder": 0, "int_mult_div": 0,
            "fp_mult_div": 0}
    base.update(activity)
    return SimulationResult(cycles=cycles, instructions=instructions,
                            avg_ruu_occupancy=ruu, avg_lsq_occupancy=lsq,
                            avg_ifq_occupancy=ifq, activity=base)


@pytest.fixture
def model(config):
    return WattchPowerModel(config)


class TestMaxPower:
    def test_all_units_positive(self, model):
        assert all(p > 0 for p in model.max_power.values())

    def test_scales_with_window(self):
        small = WattchPowerModel(baseline_config().with_window(16, 8))
        large = WattchPowerModel(baseline_config().with_window(128, 32))
        assert large.max_power["ruu"] > small.max_power["ruu"]
        assert large.max_power["lsq"] > small.max_power["lsq"]

    def test_scales_with_caches(self):
        small = WattchPowerModel(baseline_config().with_cache_scale(0.25))
        large = WattchPowerModel(baseline_config().with_cache_scale(4.0))
        for unit in ("il1", "dl1", "l2"):
            assert large.max_power[unit] > small.max_power[unit]

    def test_scales_with_predictor(self):
        small = WattchPowerModel(
            baseline_config().with_predictor_scale(0.25))
        large = WattchPowerModel(
            baseline_config().with_predictor_scale(4.0))
        assert large.max_power["bpred"] > small.max_power["bpred"]

    def test_clock_is_large_share(self, model):
        total = sum(model.max_power.values())
        assert model.max_power["clock"] > 0.2 * total


class TestCc3Gating:
    def test_idle_machine_burns_idle_fraction(self, model):
        idle = _result(ruu=0.0, lsq=0.0, ifq=0.0)
        breakdown = model.energy_per_cycle(idle)
        for unit, pmax in model.max_power.items():
            if unit == "clock":
                continue
            assert breakdown.unit(unit) == pytest.approx(
                IDLE_FRACTION * pmax)

    def test_activity_increases_power(self, model, config):
        idle = _result(instructions=0)
        busy = _result(instructions=8000,
                       fetch=16_000, dispatch=8000, issue=8000,
                       commit=8000, bpred=2000, il1=16_000, dl1=4000,
                       l2=100, int_alu=6000, load_store=3000)
        assert model.epc(busy) > model.epc(idle)

    def test_power_bounded_by_max(self, model):
        saturated = _result(instructions=8000, ruu=128.0, lsq=32.0,
                            ifq=32.0,
                            **{k: 10**9 for k in
                               ("fetch", "dispatch", "issue", "bpred",
                                "il1", "dl1", "l2", "int_alu",
                                "load_store", "fp_adder", "int_mult_div",
                                "fp_mult_div")})
        breakdown = model.energy_per_cycle(saturated)
        for unit, value in breakdown.per_unit.items():
            assert value <= model.max_power[unit] + 1e-9

    def test_total_is_sum(self, model):
        breakdown = model.energy_per_cycle(_result())
        assert breakdown.total == pytest.approx(
            sum(breakdown.per_unit.values()))

    def test_unknown_unit_rejected(self, model):
        breakdown = model.energy_per_cycle(_result())
        with pytest.raises(ValueError):
            breakdown.unit("flux_capacitor")


class TestEdp:
    def test_formula(self):
        # EDP = EPC * CPI^2 = EPC / IPC^2.
        assert energy_delay_product(20.0, 2.0) == pytest.approx(5.0)

    def test_zero_ipc(self):
        assert energy_delay_product(20.0, 0.0) == float("inf")

    def test_faster_is_better_at_equal_power(self):
        assert energy_delay_product(20.0, 2.0) < \
            energy_delay_product(20.0, 1.0)
