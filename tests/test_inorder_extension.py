"""Tests for the in-order / anti-dependency extension (paper §2.1.1
future work)."""

from dataclasses import replace

import pytest

from repro.config import baseline_config
from repro.isa.iclass import IClass
from repro.branch.unit import BranchOutcome
from repro.core.profiler import profile_trace
from repro.core.synthesis import generate_synthetic_trace
from repro.cpu.pipeline import simulate
from repro.cpu.source import (
    ExecutionDrivenSource,
    FetchSlot,
    PreannotatedSource,
)


def _alu(**kwargs):
    return FetchSlot(IClass.INT_ALU, exec_latency=1, **kwargs)


class TestInOrderIssue:
    def test_in_order_never_faster(self, small_trace, config):
        in_order = replace(config, in_order_issue=True)
        ooo = simulate(config, ExecutionDrivenSource(small_trace, config))
        ino = simulate(in_order,
                       ExecutionDrivenSource(small_trace, in_order))
        assert ino.ipc <= ooo.ipc + 1e-9
        assert ino.instructions == ooo.instructions

    def test_stall_blocks_younger_independents(self):
        # A long-latency head instruction: in-order stalls everything,
        # out-of-order lets independents pass.
        slots = [FetchSlot(IClass.INT_DIV, exec_latency=20,
                           dep_distances=(1,)) for _ in range(20)]
        slots += [_alu() for _ in range(200)]
        config = baseline_config()
        in_order = replace(config, in_order_issue=True)
        ooo = simulate(config, PreannotatedSource(list(slots)))
        ino = simulate(in_order, PreannotatedSource(list(slots)))
        assert ino.cycles >= ooo.cycles

    def test_in_order_commits_everything(self):
        config = replace(baseline_config(), in_order_issue=True)
        result = simulate(config,
                          PreannotatedSource([_alu() for _ in range(300)]))
        assert result.instructions == 300


class TestAntiDependencyProfiling:
    def test_waw_distances_recorded(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        stats = profile.sfg.contexts[(0, 0)]
        # Block 0 repeats every 3 instructions: each load's destination
        # r1 was last written 3 instructions earlier (previous load).
        assert set(stats.waw_hists[0]) == {3}

    def test_war_distances_recorded(self, tiny_trace, config):
        profile = profile_trace(tiny_trace, config, order=1)
        stats = profile.sfg.contexts[(0, 0)]
        # The load writes r1, which the alu read 2 instructions before
        # (previous iteration's alu).
        assert set(stats.war_hists[0]) == {2}

    def test_store_slots_have_no_anti_deps(self, small_trace, config):
        profile = profile_trace(small_trace, config, order=1)
        for stats in profile.sfg.contexts.values():
            for slot, iclass in enumerate(stats.iclasses):
                if iclass is IClass.STORE:
                    assert stats.waw_hists[slot] == {}
                    assert stats.war_hists[slot] == {}


class TestAntiDependencySynthesis:
    def test_anti_deps_add_distances(self, small_trace, config):
        profile = profile_trace(small_trace, config, order=1)
        without = generate_synthetic_trace(profile, 4, seed=0)
        with_anti = generate_synthetic_trace(
            profile, 4, seed=0, include_anti_dependencies=True)
        n_without = sum(len(i.dep_distances) for i in without)
        n_with = sum(len(i.dep_distances) for i in with_anti)
        assert n_with > n_without

    def test_eds_source_adds_anti_deps(self, tiny_trace, config):
        anti_config = replace(config, enforce_anti_dependencies=True)
        plain = ExecutionDrivenSource(tiny_trace, config)
        anti = ExecutionDrivenSource(tiny_trace, anti_config)
        n_plain = n_anti = 0
        while True:
            a, b = plain.fetch(), anti.fetch()
            if a is None:
                break
            n_plain += len(a.dep_distances)
            n_anti += len(b.dep_distances)
        assert n_anti > n_plain

    def test_anti_deps_slow_the_machine(self, small_trace, config):
        anti_config = replace(config, enforce_anti_dependencies=True)
        plain = simulate(config,
                         ExecutionDrivenSource(small_trace, config))
        anti = simulate(anti_config,
                        ExecutionDrivenSource(small_trace, anti_config))
        assert anti.ipc <= plain.ipc + 1e-9
