"""Unit tests for the hot-path categorical samplers.

The guide-table and Fenwick samplers carry a *draw-stability* contract
(same uniform, same outcome as the legacy ``bisect_right`` code) that
the determinism goldens depend on; these tests check that contract
directly against ``bisect_right`` over thousands of randomized draws,
including adversarial weight shapes (zeros, single spikes, draining
counts).  The alias sampler only promises the right distribution.
"""

import random
from bisect import bisect_right
from itertools import accumulate

import pytest

from repro.core.sampling import (
    AliasSampler,
    FenwickSampler,
    GuideTableSampler,
)

WEIGHT_SHAPES = [
    [1],
    [5],
    [1, 1, 1, 1],
    [1000, 1, 1, 1],
    [1, 1, 1, 1000],
    [0, 3, 0, 0, 7, 0],
    [0, 0, 1],
    [2, 0, 0, 0, 0, 9, 4],
    list(range(1, 60)),
    [17] * 128,
    [2 ** 40, 1, 2 ** 40],
]


def _legacy_bisect(cumulative, u, total):
    index = bisect_right(cumulative, u * total)
    return min(index, len(cumulative) - 1)


@pytest.mark.parametrize("weights", WEIGHT_SHAPES,
                         ids=[str(i) for i in range(len(WEIGHT_SHAPES))])
def test_guide_table_matches_bisect(weights):
    sampler = GuideTableSampler(weights)
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    rng = random.Random(42)
    for _ in range(4000):
        u = rng.random()
        assert sampler.sample(u) == _legacy_bisect(cumulative, u, total)
    # Boundary uniforms, including ones that land exactly on cumulative
    # edges after the float multiply.
    for u in [0.0, 0.5, 1.0 - 2 ** -53]:
        assert sampler.sample(u) == _legacy_bisect(cumulative, u, total)
    for edge in cumulative:
        u = edge / total
        if u < 1.0:
            assert sampler.sample(u) == _legacy_bisect(cumulative, u,
                                                       total)


def test_guide_table_empty_and_totals():
    assert GuideTableSampler([]).total == 0
    assert GuideTableSampler([3, 4]).total == 7


def _fenwick_reference_sample(weights, u):
    """What the legacy restart code did: bisect over the cumulative
    weights of the currently *positive* entries."""
    entries = [(i, w) for i, w in enumerate(weights) if w > 0]
    cumulative = list(accumulate(w for _, w in entries))
    draw = u * cumulative[-1]
    return entries[bisect_right(cumulative, draw)][0]


@pytest.mark.parametrize("weights", [w for w in WEIGHT_SHAPES
                                     if sum(w) > 0])
def test_fenwick_matches_filtered_bisect(weights):
    sampler = FenwickSampler(weights)
    rng = random.Random(7)
    for _ in range(2000):
        u = rng.random()
        assert sampler.sample(u) == _fenwick_reference_sample(weights, u)


def test_fenwick_drain_stays_equivalent():
    """Decrement weights the way the random walk drains start-node
    budgets; the sampler must keep matching the filtered bisect."""
    rng = random.Random(3)
    weights = [rng.randrange(0, 6) for _ in range(40)]
    while sum(weights) == 0:
        weights = [rng.randrange(0, 6) for _ in range(40)]
    sampler = FenwickSampler(list(weights))
    while sampler.total > 0:
        u = rng.random()
        index = sampler.sample(u)
        assert index == _fenwick_reference_sample(weights, u)
        assert weights[index] > 0  # zero entries can't absorb a draw
        weights[index] -= 1
        sampler.add(index, -1)
        assert sampler.weight(index) == weights[index]
    assert sampler.total == 0


def test_fenwick_add_and_weight_roundtrip():
    sampler = FenwickSampler([4, 0, 9, 2])
    assert [sampler.weight(i) for i in range(4)] == [4, 0, 9, 2]
    sampler.add(1, 5)
    sampler.add(2, -9)
    assert [sampler.weight(i) for i in range(4)] == [4, 5, 0, 2]
    assert sampler.total == 11


def test_fenwick_rejects_negative_weights():
    with pytest.raises(ValueError):
        FenwickSampler([1, -2])


def test_alias_distribution_and_determinism():
    weights = [6, 1, 0, 3]
    sampler = AliasSampler(weights)
    rng = random.Random(17)
    counts = [0] * len(weights)
    draws = [rng.random() for _ in range(40000)]
    for u in draws:
        counts[sampler.sample(u)] += 1
    assert counts[2] == 0  # zero-weight entry never drawn
    total = sum(weights)
    for index, weight in enumerate(weights):
        expected = weight / total
        assert abs(counts[index] / len(draws) - expected) < 0.02
    # Same uniforms, same outcomes (the sampler itself is stateless).
    again = [sampler.sample(u) for u in draws[:100]]
    assert again == [sampler.sample(u) for u in draws[:100]]


def test_alias_rejects_degenerate_tables():
    with pytest.raises(ValueError):
        AliasSampler([])
    with pytest.raises(ValueError):
        AliasSampler([0, 0])
    with pytest.raises(ValueError):
        AliasSampler([1, -1])
