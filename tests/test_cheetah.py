"""Tests for the single-pass stack-distance profiler (cheetah-style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.cache.cache import SetAssociativeCache
from repro.cache.cheetah import StackDistanceProfiler


class TestStackDistances:
    def test_repeat_access_distance_zero(self):
        profiler = StackDistanceProfiler(line_bytes=32)
        profiler.access(0)
        profiler.access(0)
        assert profiler.miss_rate(1) == pytest.approx(0.5)

    def test_all_distinct_all_miss(self):
        profiler = StackDistanceProfiler(line_bytes=32)
        profiler.profile(i * 32 for i in range(50))
        assert profiler.miss_rate(1000) == 1.0

    def test_miss_rate_monotone_in_capacity(self):
        profiler = StackDistanceProfiler(line_bytes=32)
        import random
        rng = random.Random(3)
        profiler.profile(rng.randrange(1 << 12) for _ in range(2000))
        rates = profiler.miss_rates([1, 2, 4, 8, 16, 32, 64, 128])
        values = list(rates.values())
        for a, b in zip(values, values[1:]):
            assert b <= a

    def test_rejects_bad_capacity(self):
        profiler = StackDistanceProfiler()
        with pytest.raises(ValueError):
            profiler.miss_rate(0)

    def test_rejects_bad_line(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(line_bytes=24)

    def test_empty_profile(self):
        assert StackDistanceProfiler().miss_rate(4) == 0.0


class TestEquivalenceWithFullyAssociativeLRU:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1 << 11), min_size=1, max_size=300),
           st.sampled_from([1, 2, 4, 8]))
    def test_matches_fully_associative_cache(self, addresses, lines):
        """Mattson's inclusion property: the single-pass profile must
        reproduce a fully-associative LRU cache of any capacity."""
        profiler = StackDistanceProfiler(line_bytes=32)
        cache = SetAssociativeCache(
            CacheConfig("fa", lines * 32, lines, 32, 1))  # 1 set
        misses = 0
        for address in addresses:
            profiler.access(address)
            misses += not cache.access(address)
        assert profiler.miss_rate(lines) == \
            pytest.approx(misses / len(addresses))
