"""Write-ahead journal: append/replay round-trips, torn-tail
recovery, compaction, and the journal-corrupt chaos site."""

import json

import pytest

from repro.faults import ChaosPlan
from repro.service.journal import Journal


def records_of(journal, after=0):
    records, dropped = journal.replay(after_seq=after)
    return records, dropped


class TestRoundTrip:
    def test_append_then_replay(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(1, {"op": "a"})
        journal.append(2, {"op": "b", "nested": {"x": [1, 2]}})
        records, dropped = records_of(journal)
        assert records == [(1, {"op": "a"}),
                           (2, {"op": "b", "nested": {"x": [1, 2]}})]
        assert dropped == 0

    def test_replay_after_seq_filters(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        for seq in range(1, 6):
            journal.append(seq, {"seq": seq})
        records, _ = records_of(journal, after=3)
        assert [seq for seq, _ in records] == [4, 5]

    def test_missing_file_is_empty(self, tmp_path):
        assert records_of(Journal(tmp_path / "absent.jsonl")) == ([], 0)

    def test_max_seq(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        assert journal.max_seq() == 0
        journal.append(7, {"op": "x"})
        journal.append(9, {"op": "y"})
        assert journal.max_seq() == 9

    def test_survives_reopen(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(1, {"op": "a"})
        journal.close()
        again = Journal(tmp_path / "j.jsonl")
        again.append(2, {"op": "b"})
        records, dropped = records_of(again)
        assert [seq for seq, _ in records] == [1, 2]
        assert dropped == 0


class TestTornTail:
    def test_truncated_last_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(1, {"op": "a"})
        journal.append(2, {"op": "b"})
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-10])  # die mid-append
        records, dropped = records_of(Journal(path))
        assert records == [(1, {"op": "a"})]
        assert dropped == 1

    def test_bitflipped_line_fails_crc(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(1, {"op": "a", "value": 10})
        journal.close()
        text = path.read_text().replace("10", "99")
        path.write_text(text)
        records, dropped = records_of(Journal(path))
        assert records == []
        assert dropped == 1

    def test_garbage_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(1, {"op": "a"})
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('["a", "list"]\n')
        journal.append(2, {"op": "b"})
        records, dropped = records_of(Journal(path))
        assert [seq for seq, _ in records] == [1, 2]
        assert dropped == 2


class TestRewrite:
    def test_compaction_replaces_contents(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        for seq in range(1, 10):
            journal.append(seq, {"seq": seq})
        journal.rewrite([(9, {"seq": 9})])
        records, dropped = records_of(Journal(path))
        assert records == [(9, {"seq": 9})]
        assert dropped == 0

    def test_rewrite_empty_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(1, {"op": "a"})
        journal.rewrite([])
        assert path.read_text() == ""
        assert not list(tmp_path.glob("*.tmp"))

    def test_append_after_rewrite_lands_at_new_tail(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(1, {"op": "a"})
        journal.rewrite([])
        journal.append(2, {"op": "b"})
        records, _ = records_of(journal)
        assert records == [(2, {"op": "b"})]


class TestJournalCorruptChaos:
    def test_site_tears_the_tail(self, tmp_path):
        plan = ChaosPlan.parse("seed=1;journal-corrupt")
        path = tmp_path / "j.jsonl"
        journal = Journal(path, fault_plan=plan)
        journal.append(1, {"op": "a"})
        # rate=1: the append's tail was corrupted in place.
        records, dropped = records_of(Journal(path))
        assert records == []
        assert dropped == 1

    def test_acknowledged_prefix_survives(self, tmp_path):
        plan = ChaosPlan.parse("seed=5;journal-corrupt:rate=0.3")
        path = tmp_path / "j.jsonl"
        journal = Journal(path, fault_plan=plan)
        fired = 0
        for seq in range(1, 30):
            journal.append(seq, {"seq": seq})
            if plan.fires("journal-corrupt", str(seq)):
                fired += 1
        assert fired > 0
        records, dropped = records_of(Journal(path))
        seqs = [seq for seq, _ in records]
        # Whatever survives is a subset of what was written, in order,
        # and every surviving record is byte-perfect.
        assert seqs == sorted(seqs)
        assert all(record == {"seq": seq} for seq, record in records)

    def test_corruption_is_deterministic(self, tmp_path):
        def run(root):
            plan = ChaosPlan.parse("seed=7;journal-corrupt:rate=0.5")
            journal = Journal(root / "j.jsonl", fault_plan=plan)
            for seq in range(1, 20):
                journal.append(seq, {"seq": seq})
            journal.close()
            return (root / "j.jsonl").read_bytes()

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second


class TestChaosSiteRegistry:
    @pytest.mark.parametrize("site", ["journal-corrupt", "submit-drop",
                                      "heartbeat-loss"])
    def test_new_sites_parse(self, site):
        plan = ChaosPlan.parse(site)
        assert site in plan.sites

    def test_drops_submit_and_loses_heartbeat(self):
        plan = ChaosPlan.parse("seed=1;submit-drop;heartbeat-loss")
        assert plan.drops_submit("anyjob")
        assert plan.loses_heartbeat("anyjob", 1)
        off = ChaosPlan.parse("seed=1;submit-drop:rate=0")
        assert not off.drops_submit("anyjob")
        assert not off.loses_heartbeat("anyjob", 1)
