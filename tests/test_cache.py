"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.cache.cache import SetAssociativeCache


def _cache(size=1024, assoc=2, line=32, latency=1):
    return SetAssociativeCache(CacheConfig("test", size, assoc, line,
                                           latency))


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = _cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_hits(self):
        cache = _cache(line=32)
        cache.access(0x100)
        assert cache.access(0x11F) is True  # same 32-byte line
        assert cache.access(0x120) is False  # next line

    def test_counters(self):
        cache = _cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.accesses == 3
        assert cache.misses == 2
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_miss_rate_zero_when_unused(self):
        assert _cache().miss_rate == 0.0

    def test_reset_statistics(self):
        cache = _cache()
        cache.access(0)
        cache.reset_statistics()
        assert cache.accesses == 0
        assert cache.misses == 0

    def test_probe_does_not_mutate(self):
        cache = _cache()
        cache.access(0)
        accesses = cache.accesses
        assert cache.probe(0) is True
        assert cache.probe(4096) is False
        assert cache.accesses == accesses


class TestReplacement:
    def test_lru_eviction(self):
        # 2-way, line 32, size 64 -> exactly one set with 2 ways.
        cache = _cache(size=64, assoc=2, line=32)
        cache.access(0)       # line 0
        cache.access(32)      # line 1
        cache.access(0)       # refresh line 0
        cache.access(64)      # evicts line 1 (LRU)
        assert cache.probe(0)
        assert not cache.probe(32)
        assert cache.probe(64)

    def test_direct_mapped_conflicts(self):
        cache = _cache(size=64, assoc=1, line=32)  # 2 sets
        cache.access(0)
        cache.access(64)  # same set as 0 -> evicts
        assert not cache.probe(0)

    def test_occupancy_bounded(self):
        cache = _cache(size=256, assoc=2, line=32)  # 8 lines total
        for i in range(100):
            cache.access(i * 32)
        assert cache.occupancy() <= 8

    def test_contents_snapshot(self):
        cache = _cache(size=64, assoc=2, line=32)
        cache.access(0)
        contents = cache.contents()
        assert 0 in contents
        assert contents[0] == [0]


class TestValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            _cache(size=96, assoc=1, line=24)

    def test_config_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 100, 3, 32, 1)
        with pytest.raises(ValueError):
            CacheConfig("bad", 0, 1, 32, 1)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    def test_counters_consistent(self, addresses):
        cache = _cache(size=512, assoc=4, line=32)
        for address in addresses:
            cache.access(address)
        assert cache.accesses == len(addresses)
        assert 0 <= cache.misses <= cache.accesses
        assert cache.occupancy() <= 512 // 32

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1 << 14), min_size=2, max_size=200))
    def test_repeat_access_hits(self, addresses):
        cache = _cache(size=4096, assoc=4, line=32)
        for address in addresses:
            cache.access(address)
        # Immediately repeating the last address always hits.
        assert cache.access(addresses[-1]) is True

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200),
           st.integers(1, 4))
    def test_bigger_cache_never_more_misses(self, addresses, factor):
        small = _cache(size=256, assoc=2, line=32)
        # LRU caches with more ways per set (same sets) are inclusive:
        # scaling associativity cannot add misses.
        big = _cache(size=256 * factor, assoc=2 * factor, line=32)
        small_misses = sum(not small.access(a) for a in addresses)
        big_misses = sum(not big.access(a) for a in addresses)
        assert big_misses <= small_misses
