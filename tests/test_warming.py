"""Tests for functional warming of locality structures."""

from repro.frontend.warming import (
    run_program_with_warmup,
    warm_locality_structures,
)


class TestWarmLocalityStructures:
    def test_none_warmup_builds_fresh(self, config):
        hierarchy, predictor = warm_locality_structures(None, config)
        assert hierarchy.il1.accesses == 0
        assert predictor.updates == 0

    def test_warming_fills_caches(self, small_trace, config):
        hierarchy, predictor = warm_locality_structures(small_trace,
                                                        config)
        assert hierarchy.il1.occupancy() > 0
        assert hierarchy.dl1.occupancy() > 0

    def test_statistics_reset_after_warming(self, small_trace, config):
        hierarchy, predictor = warm_locality_structures(small_trace,
                                                        config)
        assert hierarchy.il1.accesses == 0
        assert hierarchy.l2_data_accesses == 0
        assert predictor.updates == 0

    def test_warm_cache_hits_on_rerun(self, tiny_trace, config):
        hierarchy, _ = warm_locality_structures(tiny_trace, config)
        misses_before = hierarchy.il1.misses
        for inst in tiny_trace.instructions[:100]:
            hierarchy.access_instruction(inst.pc)
        # Re-fetching the warmed working set produces no new misses.
        assert hierarchy.il1.misses == misses_before

    def test_predictor_trained(self, tiny_trace, config):
        _, predictor = warm_locality_structures(tiny_trace, config)
        # The tiny loop's always-taken exit branch is in the BTB.
        branch = next(i for i in tiny_trace if i.is_branch and i.taken)
        assert predictor.btb.lookup(branch.pc) is not None

    def test_existing_structures_reused(self, tiny_trace, config):
        from repro.cache.hierarchy import CacheHierarchy

        mine = CacheHierarchy(config)
        hierarchy, _ = warm_locality_structures(tiny_trace, config,
                                                hierarchy=mine)
        assert hierarchy is mine


class TestRunProgramWithWarmup:
    def test_windows_sized(self, tiny_program):
        warm, measured = run_program_with_warmup(tiny_program, warmup=100,
                                                 n_instructions=200)
        # Warmup extends to the next block boundary.
        assert 100 <= len(warm) < 100 + 10
        assert warm.instructions[-1].is_branch
        assert len(measured) == 200
        assert measured.instructions[0].pc == \
            tiny_program.blocks[measured.instructions[0].bb_id].address

    def test_measured_renumbered(self, tiny_program):
        _, measured = run_program_with_warmup(tiny_program, warmup=77,
                                              n_instructions=50)
        assert [inst.seq for inst in measured] == list(range(50))
