"""Shared fixtures: hand-built miniature programs and small scales.

The hand-built programs are fully deterministic and analytically
checkable, which lets tests assert exact profiling results; the
generated workloads cover the realistic path.
"""

import pytest

from repro.config import MachineConfig, baseline_config
from repro.isa.iclass import IClass
from repro.isa.instruction import StaticInstruction
from repro.isa.program import BasicBlock, Program
from repro.frontend.functional import run_program
from repro.workloads.behaviors import (
    LoopBehavior,
    PatternBehavior,
    StridedStream,
)
from repro.workloads.generator import WorkloadConfig, generate_program


@pytest.fixture(autouse=True)
def _reset_health_state():
    """The degradation ladder, canary clock and active budget are
    process-level singletons; a breaker tripped by one test must never
    leak degraded behavior into the next."""
    yield
    from repro.health import reset_canary, reset_ladder
    from repro.health.budget import install_budget

    install_budget(None)
    reset_canary()
    reset_ladder()


def make_tiny_program(trip_count: int = 4) -> Program:
    """Two-block program: a loop body (block 0) iterated *trip_count*
    times per visit to the exit block (block 1).

    Block 0: load r1 <- stream0; alu r2 <- r1; branch (loop backedge)
    Block 1: alu r3 <- r2;                     branch (always taken -> 0)
    """
    block0 = BasicBlock(
        bb_id=0,
        address=0x1000,
        instructions=[
            StaticInstruction(IClass.LOAD, src_regs=(4,), dst_reg=1,
                              mem_stream=0),
            StaticInstruction(IClass.INT_ALU, src_regs=(1,), dst_reg=2),
            StaticInstruction(IClass.INT_COND_BRANCH, src_regs=(2,)),
        ],
        taken_target=0,
        fallthrough=1,
        branch_behavior=0,
    )
    block1 = BasicBlock(
        bb_id=1,
        address=0x2000,
        instructions=[
            StaticInstruction(IClass.INT_ALU, src_regs=(2,), dst_reg=3),
            StaticInstruction(IClass.INT_COND_BRANCH, src_regs=(3,)),
        ],
        taken_target=0,
        fallthrough=0,
        branch_behavior=1,
    )
    return Program(
        name="tiny",
        blocks=[block0, block1],
        entry=0,
        branch_behaviors=[LoopBehavior(trip_count), PatternBehavior("T")],
        memory_streams=[StridedStream(base=0x10_0000, stride=8,
                                      length=4096)],
    )


@pytest.fixture
def tiny_program() -> Program:
    return make_tiny_program()


@pytest.fixture
def tiny_trace(tiny_program):
    return run_program(tiny_program, n_instructions=600)


@pytest.fixture
def config() -> MachineConfig:
    return baseline_config()


@pytest.fixture
def small_workload_config() -> WorkloadConfig:
    return WorkloadConfig(name="unit", seed=7, n_blocks=12,
                          mean_block_size=4, working_set_kb=32,
                          n_memory_streams=4)


@pytest.fixture
def small_program(small_workload_config) -> Program:
    return generate_program(small_workload_config)


@pytest.fixture
def small_trace(small_program):
    return run_program(small_program, n_instructions=3000)
