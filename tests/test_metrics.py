"""Tests for the accuracy metrics of the paper's evaluation."""

import pytest

from repro.core.metrics import (
    absolute_error,
    coefficient_of_variation,
    mean,
    relative_error,
)


class TestAbsoluteError:
    def test_formula(self):
        assert absolute_error(1.1, 1.0) == pytest.approx(0.1)
        assert absolute_error(0.9, 1.0) == pytest.approx(0.1)

    def test_exact_prediction(self):
        assert absolute_error(2.0, 2.0) == 0.0

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            absolute_error(1.0, 0.0)


class TestRelativeError:
    def test_matching_trends_have_zero_error(self):
        # SS says 1.0 -> 1.2, EDS says 2.0 -> 2.4: same 1.2x trend.
        assert relative_error(1.0, 1.2, 2.0, 2.4) == pytest.approx(0.0)

    def test_trend_mismatch(self):
        # SS trend 1.0, EDS trend 1.25: error = 0.25/1.25 = 0.2.
        assert relative_error(1.0, 1.0, 1.0, 1.25) == pytest.approx(0.2)

    def test_insensitive_to_absolute_bias(self):
        # A constant multiplicative bias cancels in relative error.
        error = relative_error(2.0, 2.6, 1.0, 1.3)
        assert error == pytest.approx(0.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            relative_error(0.0, 1.0, 1.0, 1.0)


class TestCoV:
    def test_identical_values(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        # mean 2, sample stdev 1 -> CoV 0.5.
        assert coefficient_of_variation([1.0, 2.0, 3.0]) == \
            pytest.approx((1.0) / 2.0)

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0])

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1.0, 1.0])


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty(self):
        with pytest.raises(ValueError):
            mean([])
