"""OpenMetrics exposition, the strict validator, and fleet merging."""

import json

import pytest

from repro.obs.exposition import (
    aggregate_run_dir,
    merge_snapshots,
    render_openmetrics,
    sanitize_name,
    validate_openmetrics,
)
from repro.obs.metrics import MetricsRegistry, TimingHistogram


def make_snapshot(**overrides):
    registry = MetricsRegistry()
    registry.counter("dse.evaluated").inc(4)
    registry.gauge("pipeline.ipc").set(2.5)
    hist = registry.histogram("phase.simulate")
    for value in (0.1, 0.2, 0.4):
        hist.observe(value)
    snapshot = registry.snapshot()
    snapshot.update(overrides)
    return snapshot


class TestRender:
    def test_render_is_valid_openmetrics(self):
        text = render_openmetrics(make_snapshot())
        assert validate_openmetrics(text) == []

    def test_counters_get_total_suffix(self):
        text = render_openmetrics(make_snapshot())
        assert "# TYPE repro_dse_evaluated counter" in text
        assert "repro_dse_evaluated_total 4" in text

    def test_histograms_expose_quantiles(self):
        text = render_openmetrics(make_snapshot())
        assert "# TYPE repro_phase_simulate summary" in text
        assert 'repro_phase_simulate{quantile="0.5"}' in text
        assert 'repro_phase_simulate{quantile="0.99"}' in text
        assert "repro_phase_simulate_count 3" in text

    def test_ends_with_single_eof(self):
        text = render_openmetrics(make_snapshot())
        assert text.endswith("# EOF\n")
        assert text.count("# EOF") == 1

    def test_empty_snapshot_still_valid(self):
        text = render_openmetrics({})
        assert text == "# EOF\n"
        assert validate_openmetrics(text) == []

    def test_sanitize_name(self):
        assert sanitize_name("dse.cache_hits") == "repro_dse_cache_hits"
        assert sanitize_name("pipeline.activity.l1d") \
            == "repro_pipeline_activity_l1d"


class TestValidator:
    def test_missing_eof_flagged(self):
        assert any("EOF" in problem for problem in
                   validate_openmetrics("repro_x 1\n"))

    def test_missing_trailing_newline_flagged(self):
        assert any("newline" in problem for problem in
                   validate_openmetrics("# EOF"))

    def test_sample_before_type_flagged(self):
        text = "repro_x_total 1\n# TYPE repro_x counter\n# EOF\n"
        assert any("precedes" in problem for problem in
                   validate_openmetrics(text))

    def test_counter_without_total_suffix_flagged(self):
        text = "# TYPE repro_x counter\nrepro_x 1\n# EOF\n"
        assert any("_total" in problem for problem in
                   validate_openmetrics(text))

    def test_non_numeric_value_flagged(self):
        text = "# TYPE repro_x gauge\nrepro_x banana\n# EOF\n"
        assert any("non-numeric" in problem for problem in
                   validate_openmetrics(text))

    def test_duplicate_sample_flagged(self):
        text = ("# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2\n# EOF\n")
        assert any("duplicate sample" in problem for problem in
                   validate_openmetrics(text))


class TestMerge:
    def test_counters_sum_and_processes_counted(self):
        merged = merge_snapshots([make_snapshot(), make_snapshot()])
        assert merged["processes"] == 2
        assert merged["counters"]["dse.evaluated"] == 8

    def test_histograms_merge_exactly(self):
        merged = merge_snapshots([make_snapshot(), make_snapshot()])
        payload = merged["histograms"]["phase.simulate"]
        assert payload["count"] == 6
        assert payload["total"] == pytest.approx(1.4)
        restored = TimingHistogram.from_payload(payload)
        assert restored.percentile(0.5) is not None

    def test_phases_view_rebuilt(self):
        merged = merge_snapshots([make_snapshot()])
        assert "simulate" in merged["phases"]
        assert merged["phases"]["simulate"]["count"] == 3

    def test_gauges_last_write_wins(self):
        second = make_snapshot()
        second["gauges"]["pipeline.ipc"] = 9.0
        merged = merge_snapshots([make_snapshot(), second])
        assert merged["gauges"]["pipeline.ipc"] == 9.0

    def test_garbage_entries_skipped(self):
        merged = merge_snapshots([None, "nope", make_snapshot()])
        assert merged["processes"] == 1

    def test_merged_renders_valid(self):
        merged = merge_snapshots([make_snapshot(), make_snapshot()])
        assert validate_openmetrics(render_openmetrics(merged)) == []


class TestAggregateRunDir:
    def test_aggregates_per_pid_files(self, tmp_path):
        (tmp_path / "metrics-100.json").write_text(
            json.dumps(make_snapshot()))
        nested = tmp_path / "sub"
        nested.mkdir()
        (nested / "metrics-200.json").write_text(
            json.dumps(make_snapshot()))
        merged = aggregate_run_dir(tmp_path)
        assert merged["processes"] == 2
        assert merged["counters"]["dse.evaluated"] == 8

    def test_corrupt_files_skipped(self, tmp_path):
        (tmp_path / "metrics-100.json").write_text("{torn")
        (tmp_path / "metrics-200.json").write_text(
            json.dumps(make_snapshot()))
        merged = aggregate_run_dir(tmp_path)
        assert merged["processes"] == 1

    def test_empty_dir_yields_empty_valid_snapshot(self, tmp_path):
        merged = aggregate_run_dir(tmp_path)
        assert merged["processes"] == 0
        assert validate_openmetrics(render_openmetrics(merged)) == []
