"""Concurrent multi-process ResultCache access: no lost writes, no
torn reads, a consistent index.

Several worker processes hammer one cache directory with overlapping
keys — putting, getting, and corrupting entries — while the parent
asserts the invariants the shared store promises: every read returns
either a complete, checksum-verified payload or a miss (never a torn
value), every key that any process wrote survives (unless deliberately
corrupted), and the maintained index agrees with the objects on disk.
"""

import json
import multiprocessing
import os

import pytest

from repro.dse.cache import ResultCache, result_key

KEYS = 16  # deliberately overlapping across workers
WORKERS = 4
ROUNDS = 25


def shared_key(i):
    return result_key(f"profile-{i % KEYS}", "shared-config",
                      i % KEYS, 4.0)


def hammer(cache_dir, worker, out):
    """One worker process: interleave puts, gets and corruptions."""
    cache = ResultCache(cache_dir, fault_plan=None)
    torn_reads = 0
    for round_no in range(ROUNDS):
        i = (worker + round_no) % KEYS
        key = shared_key(i)
        payload = {"ipc": float(i), "worker": float(worker),
                   "round": float(round_no)}
        cache.put(key, payload)
        entry = cache.get(key)
        if entry is not None:
            metrics = entry["metrics"]
            # A torn read would show a payload mixing writers or
            # missing fields; checksummed atomic writes forbid both.
            if set(metrics) != {"ipc", "worker", "round"} \
                    or metrics["ipc"] != float(i):
                torn_reads += 1
        if round_no % 7 == worker % 7:
            # Simulate a crashed writer: truncate an entry mid-file.
            victim = cache._path(shared_key((i + 1) % KEYS))
            if victim.exists():
                data = victim.read_bytes()
                victim.write_bytes(data[: max(1, len(data) // 2)])
        cache.get(shared_key((i + 3) % KEYS))
    out.put((worker, torn_reads, cache.stats.hits,
             cache.stats.corrupt_discarded))


class TestConcurrentAccess:
    def test_multiprocess_hammer(self, tmp_path):
        cache_dir = tmp_path / "cache"
        ctx = multiprocessing.get_context("spawn")
        out = ctx.Queue()
        procs = [ctx.Process(target=hammer,
                             args=(str(cache_dir), worker, out))
                 for worker in range(WORKERS)]
        for proc in procs:
            proc.start()
        results = [out.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        torn = sum(r[1] for r in results)
        hits = sum(r[2] for r in results)
        assert torn == 0, f"{torn} torn read(s) observed"
        assert hits > 0  # the processes genuinely overlapped

        # Survivors are all readable and the healed index matches the
        # objects exactly.
        cache = ResultCache(cache_dir, fault_plan=None)
        count, size = cache.rebuild_index()
        objects = list((cache_dir / "objects").glob("*/*.json"))
        readable = sum(1 for path in objects
                       if cache.get(path.stem) is not None)
        # Corrupted-in-place entries get discarded at read time, so
        # after one full read pass the store holds only verified
        # entries and the index agrees.
        assert readable <= count
        assert len(cache) == readable
        assert cache.total_bytes() == sum(
            cache._path(path.stem).stat().st_size
            for path in objects if cache._path(path.stem).exists())

    def test_two_processes_interleaved_puts_no_lost_writes(self,
                                                           tmp_path):
        """Distinct key sets from two processes: every write must
        survive — the per-shard flock may serialize index updates but
        cannot drop entries."""
        cache_dir = tmp_path / "cache"
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_fill_range,
                             args=(str(cache_dir), start))
                 for start in (0, 30)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        cache = ResultCache(cache_dir, fault_plan=None)
        assert len(cache) == 60
        for i in range(60):
            entry = cache.get(result_key(f"p{i}", "c", i, 4.0))
            assert entry is not None
            assert entry["metrics"]["ipc"] == float(i)


def _fill_range(cache_dir, start):
    cache = ResultCache(cache_dir, fault_plan=None)
    for i in range(start, start + 30):
        cache.put(result_key(f"p{i}", "c", i, 4.0),
                  {"ipc": float(i)})
