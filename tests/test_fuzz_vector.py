"""The fuzz harness's vector layer (``repro fuzz --vector``): columnar
draws must pass the same statistical acceptance as scalar draws, and
columnar-specific failures are minimized, corpus-filed under kind
``vector`` and replayable."""

import pytest

from repro.fuzz.corpus import load_entry
from repro.fuzz.generator import random_case
from repro.fuzz.harness import (
    OK,
    VECTOR,
    FuzzPolicy,
    FuzzReport,
    CaseVerdict,
    evaluate_case,
    replay_entry,
)
from repro.isa.iclass import IClass


def _case():
    return random_case(0, 0)


class TestVectorLayer:
    def test_vector_margins_recorded_on_pass(self):
        policy = FuzzPolicy(vector=True, minimize=False)
        verdict = evaluate_case(_case(), policy)
        assert verdict.status == OK
        vector_margins = {name: margin
                         for name, margin in verdict.margins.items()
                         if name.startswith("vector.")}
        assert vector_margins, "vector layer left no margins"
        assert all(margin >= 0 for margin in vector_margins.values())

    def test_vector_layer_off_by_default(self):
        verdict = evaluate_case(_case(), FuzzPolicy(minimize=False))
        assert verdict.status == OK
        assert not any(name.startswith("vector.")
                       for name in verdict.margins)

    def test_stats_payload_counts_vector_verdicts(self):
        report = FuzzReport(seed=0, verdicts=[
            CaseVerdict(case_id="a", status=OK),
            CaseVerdict(case_id="b", status=VECTOR, detail="drift"),
        ])
        payload = report.stats_payload()
        assert payload["verdicts"][VECTOR] == 1
        assert "vector" in report.summary()


def _broken_vector_synthetic(profile, case):
    """A columnar stand-in whose instruction mix cannot match any real
    profile: every instruction collapsed to INT_ALU."""
    from repro.core.columnar import generate_columnar_trace

    columnar = generate_columnar_trace(profile, case.reduction_factor,
                                       seed=case.synthesis_seed)
    trace = columnar.to_synthetic_trace()
    for inst in trace.instructions:
        inst.iclass = IClass.INT_ALU
        inst.taken = False
    return trace


class TestVectorFailure:
    def test_failure_minimized_filed_and_replayed(self, tmp_path,
                                                  monkeypatch):
        import repro.fuzz.harness as harness

        monkeypatch.setattr(harness, "_vector_synthetic",
                            _broken_vector_synthetic)
        policy = FuzzPolicy(vector=True, corpus_dir=str(tmp_path),
                            max_trials=8)
        verdict = evaluate_case(_case(), policy)
        assert verdict.status == VECTOR
        assert verdict.corpus_path
        assert verdict.minimization

        entry = load_entry(verdict.corpus_path)
        assert entry.kind == VECTOR

        # While the defect persists, replay reports it as regressed.
        result = replay_entry(verdict.corpus_path)
        assert result.kind == VECTOR
        assert not result.passed

        # Once the columnar generator is healthy again, the pinned
        # entry replays green.
        monkeypatch.undo()
        result = replay_entry(verdict.corpus_path)
        assert result.passed, result.detail
