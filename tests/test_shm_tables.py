"""Shared-memory table publication: round-trip, attachment, hygiene.

The hygiene contract matters more than the happy path: a DSE sweep that
dies — cleanly, by SIGTERM, or by ``kill -9`` — must never leave
orphaned segments in ``/dev/shm``.  Normal exits unlink explicitly
(``finally``/``atexit``); hard kills fall through to the publisher's
``resource_tracker`` process, which survives the kill and unlinks every
registered segment.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.columnar import build_columnar_tables, generate_columnar_trace
from repro.core.profiler import profile_trace
from repro.core.shm_tables import (
    attach_tables,
    deserialize_tables,
    publish_tables,
    serialize_tables,
)

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture
def tables(small_trace, config):
    profile = profile_trace(small_trace, config, order=1)
    return profile, build_columnar_tables(profile.sfg)


def _shm_names():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:
        return set()


class TestSerialization:
    def test_round_trip_preserves_every_array(self, tables):
        _, original = tables
        rebuilt = deserialize_tables(serialize_tables(original))
        assert rebuilt.order == original.order
        assert rebuilt.contexts == original.contexts
        assert rebuilt.ctx_index == original.ctx_index
        assert rebuilt.edges == original.edges
        for name, array in original.arrays().items():
            assert np.array_equal(getattr(rebuilt, name), array), name

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_tables(b"NOTMAGIC" + b"\0" * 64)

    def test_views_are_zero_copy(self, tables):
        _, original = tables
        blob = serialize_tables(original)
        rebuilt = deserialize_tables(blob)
        # frombuffer over the blob: read-only views, no private copies.
        assert not rebuilt.iclass.flags.writeable


class TestPublishAttach:
    def test_attach_produces_identical_synthesis(self, tables):
        profile, original = tables
        published = publish_tables(original)
        try:
            attached = attach_tables(published.descriptor)
            from repro.core.columnar import adopt_columnar_tables

            adopt_columnar_tables(profile.sfg, attached)
            via_shared = generate_columnar_trace(profile, 4.0, seed=0)
            local = build_columnar_tables(profile.sfg)
            adopt_columnar_tables(profile.sfg, local)
            via_local = generate_columnar_trace(profile, 4.0, seed=0)
            assert np.array_equal(via_shared.iclass, via_local.iclass)
            assert np.array_equal(via_shared.dep_val, via_local.dep_val)
        finally:
            published.unlink()

    def test_file_fallback_round_trips(self, tables, tmp_path,
                                       monkeypatch):
        _, original = tables

        # Force the shm path to fail so publish lands on the file
        # fallback.
        import repro.core.shm_tables as shm_mod

        class _Boom:
            def __init__(self, *a, **k):
                raise OSError("no shared memory here")

        import multiprocessing.shared_memory as shared_memory

        monkeypatch.setattr(shared_memory, "SharedMemory", _Boom)
        published = shm_mod.publish_tables(original,
                                           fallback_dir=str(tmp_path))
        try:
            assert published.kind == "file"
            assert Path(published.name).exists()
            rebuilt = attach_tables(published.descriptor)
            assert np.array_equal(rebuilt.iclass, original.iclass)
        finally:
            published.unlink()
        assert not Path(published.name).exists()

    def test_unlink_is_idempotent(self, tables):
        _, original = tables
        published = publish_tables(original)
        published.unlink()
        published.unlink()  # second call must be a no-op


class TestHygiene:
    """No /dev/shm orphans, however the publisher dies."""

    PUBLISH_AND_WAIT = """
import sys, time
sys.path.insert(0, {src!r})
from tests.conftest import make_tiny_program
from repro.frontend.functional import run_program
from repro.config import baseline_config
from repro.core.profiler import profile_trace
from repro.core.columnar import build_columnar_tables
from repro.core.shm_tables import publish_tables

trace = run_program(make_tiny_program(), n_instructions=400)
profile = profile_trace(trace, baseline_config(), order=1)
published = publish_tables(build_columnar_tables(profile.sfg))
print(published.name, flush=True)
{epilogue}
"""

    def _spawn(self, epilogue: str) -> subprocess.Popen:
        code = self.PUBLISH_AND_WAIT.format(src=REPO_SRC,
                                            epilogue=epilogue)
        env = dict(os.environ,
                   PYTHONPATH=REPO_SRC + os.pathsep
                   + str(Path(REPO_SRC).parent))
        return subprocess.Popen([sys.executable, "-c", code],
                                stdout=subprocess.PIPE, text=True,
                                env=env,
                                cwd=str(Path(REPO_SRC).parent))

    def _assert_gone(self, name: str, timeout: float = 10.0) -> None:
        name = name.lstrip("/")
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if name not in _shm_names():
                return
            time.sleep(0.1)
        raise AssertionError(
            f"segment {name} still in /dev/shm after {timeout}s")

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="no /dev/shm on this platform")
    def test_normal_exit_unlinks(self):
        proc = self._spawn("")  # falls off the end: atexit unlinks
        name = proc.stdout.readline().strip()
        proc.wait(timeout=30)
        assert name
        self._assert_gone(name)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="no /dev/shm on this platform")
    def test_sigterm_unlinks(self):
        proc = self._spawn("time.sleep(60)")
        name = proc.stdout.readline().strip()
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        assert name
        # atexit is skipped on the default SIGTERM handler; the
        # resource tracker survives the death and unlinks.
        self._assert_gone(name)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="no /dev/shm on this platform")
    def test_kill_9_leaves_no_orphans(self):
        proc = self._spawn("time.sleep(60)")
        name = proc.stdout.readline().strip()
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert name
        # Nothing in the publisher ran — no finally, no atexit, no
        # signal handler.  The tracker process is the only line of
        # defense, and it must hold.
        self._assert_gone(name)


class TestVectorSweepHygiene:
    def test_parallel_vector_sweep_under_worker_kill_chaos(
            self, small_trace, config):
        """A vector sweep whose workers are being chaos-killed must
        still finish (supervisor rebuilds the pool) and must not leave
        shm segments behind."""
        from repro.faults import ChaosPlan
        from repro.dse.engine import SweepEngine
        from repro.dse.space import DesignPoint

        before = _shm_names()
        profile = profile_trace(small_trace, config, order=1)
        points = [DesignPoint(config=config.with_width(w),
                              params=(("width", w),))
                  for w in (2, 4)]
        engine = SweepEngine(
            profile, jobs=2, vector=True,
            fault_plan=ChaosPlan.parse("seed=3;worker-kill:rate=0.5"))
        result = engine.evaluate(points, seeds=(0, 1),
                                 reduction_factor=4.0)
        assert result.total_tasks == 4
        leftovers = _shm_names() - before
        assert not leftovers, leftovers


class TestInterruptedVectorSweepHygiene:
    """SIGTERM and Ctrl-C mid-sweep must leave nothing behind: no shm
    segment, no repro-leases-* temp directory — and must still hand the
    caller a partial report instead of a bare traceback."""

    def _interrupted_sweep(self, small_trace, config, monkeypatch,
                           interrupt):
        import tempfile

        from repro.dse.engine import SweepEngine
        from repro.dse.space import DesignPoint
        from repro.dse.supervisor import PoolSupervisor

        shm_before = _shm_names()
        tmp = Path(tempfile.gettempdir())
        leases_before = set(tmp.glob("repro-leases-*"))

        real_run = PoolSupervisor.run

        def run_then_die(self, tasks):
            outcomes = real_run(self, tasks)
            interrupt(outcomes)
            return outcomes

        monkeypatch.setattr(PoolSupervisor, "run", run_then_die)
        profile = profile_trace(small_trace, config, order=1)
        points = [DesignPoint(config=config.with_width(w),
                              params=(("width", w),))
                  for w in (2, 4)]
        engine = SweepEngine(profile, jobs=2, vector=True)
        result = engine.evaluate(points, seeds=(0,),
                                 reduction_factor=4.0)

        assert result.interrupted
        assert "INTERRUPTED" in result.summary()
        leftovers = _shm_names() - shm_before
        assert not leftovers, leftovers
        stale = set(tmp.glob("repro-leases-*")) - leases_before
        assert not stale, stale
        return result

    def test_sigterm_mid_sweep_cleans_up_and_reports_partial(
            self, small_trace, config, monkeypatch):
        def interrupt(outcomes):
            # Delivered synchronously to this (main) thread; the
            # engine's vector-path handler converts it into the
            # KeyboardInterrupt unwind.
            signal.raise_signal(signal.SIGTERM)

        result = self._interrupted_sweep(small_trace, config,
                                         monkeypatch, interrupt)
        # The report stays honest about what ran before the signal.
        assert result.evaluated + result.unstarted == 2

    def test_keyboard_interrupt_mid_sweep_cleans_up(
            self, small_trace, config, monkeypatch):
        from repro.errors import SweepInterrupted

        def interrupt(outcomes):
            raise SweepInterrupted(outcomes)

        result = self._interrupted_sweep(small_trace, config,
                                         monkeypatch, interrupt)
        assert result.evaluated == 2

    def test_sigterm_handler_restored_after_sweep(self, small_trace,
                                                  config):
        from repro.dse.engine import SweepEngine
        from repro.dse.space import DesignPoint

        previous = signal.getsignal(signal.SIGTERM)
        profile = profile_trace(small_trace, config, order=1)
        points = [DesignPoint(config=config.with_width(2),
                              params=(("width", 2),))]
        SweepEngine(profile, jobs=2, vector=True).evaluate(
            points, seeds=(0,), reduction_factor=4.0)
        assert signal.getsignal(signal.SIGTERM) is previous
