"""Wiring tests for every experiment module at a miniature scale.

These do not assert the paper's quantitative shapes (the benchmark
harness does, at a realistic scale); they check that each experiment
runs end to end, returns well-formed rows and formats them.
"""

import pytest

from repro.experiments.common import (
    DEFAULT_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    bench_scale,
    format_table,
    geometric_spread,
    prepare_benchmark,
    prepare_suite,
)

TINY = ExperimentScale(warmup=2000, reference=4000, reduction_factor=4.0,
                       seeds=(0,), benchmarks=("gzip", "twolf"))


class TestCommon:
    def test_prepare_benchmark(self):
        warm, trace = prepare_benchmark("gzip", TINY)
        # Warmup extends to the next block boundary.
        assert TINY.warmup <= len(warm) < TINY.warmup + 50
        assert len(trace) == TINY.reference

    def test_prepare_suite(self):
        suite = prepare_suite(TINY)
        assert set(suite) == {"gzip", "twolf"}

    def test_with_benchmarks(self):
        narrowed = DEFAULT_SCALE.with_benchmarks(["vpr"])
        assert narrowed.benchmarks == ("vpr",)

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == QUICK_SCALE
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale() == DEFAULT_SCALE

    def test_format_table(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_geometric_spread(self):
        assert geometric_spread([1.0, 2.0, 4.0]) == 4.0
        with pytest.raises(ValueError):
            geometric_spread([0.0, 1.0])


class TestExperimentModules:
    def test_table1(self):
        from repro.experiments import table1_baseline

        rows = table1_baseline.run(TINY)
        assert {row["benchmark"] for row in rows} == set(TINY.benchmarks)
        assert all(row["ipc"] > 0 for row in rows)
        assert table1_baseline.format_rows(rows)

    def test_fig3(self):
        from repro.experiments import fig3_branch_profiling

        rows = fig3_branch_profiling.run(TINY)
        for row in rows:
            for key in ("execution_driven", "immediate_update",
                        "delayed_update"):
                assert row[key] >= 0
        assert fig3_branch_profiling.format_rows(rows)

    def test_fig4_and_table3(self):
        from repro.experiments import fig4_sfg_order, table3_sfg_size

        rows = fig4_sfg_order.run(TINY, orders=(0, 1))
        averages = fig4_sfg_order.average_errors(rows)
        assert set(averages) == {0, 1}
        assert fig4_sfg_order.format_rows(rows)

        size_rows = table3_sfg_size.run(TINY, orders=(0, 1, 2))
        for row in size_rows:
            assert row["nodes"][0] <= row["nodes"][2]
        assert table3_sfg_size.format_rows(size_rows)

    def test_fig5(self):
        from repro.experiments import fig5_delayed_update

        rows = fig5_delayed_update.run(TINY)
        for row in rows:
            assert row["immediate_error"] >= 0
            assert row["delayed_error"] >= 0
        assert fig5_delayed_update.format_rows(rows)

    def test_fig6(self):
        from repro.experiments import fig6_absolute

        rows = fig6_absolute.run(TINY)
        averages = fig6_absolute.average_errors(rows)
        assert set(averages) == {"ipc", "epc", "edp"}
        assert fig6_absolute.format_rows(rows)

    def test_sec41(self):
        from repro.experiments import sec41_convergence

        rows = sec41_convergence.run("gzip", TINY, factors=(8.0, 2.0),
                                     num_seeds=4)
        assert rows[0]["synthetic_length"] < rows[1]["synthetic_length"]
        assert sec41_convergence.format_rows(rows)

    def test_fig7(self):
        from repro.experiments import fig7_hls

        rows = fig7_hls.run(TINY)
        averages = fig7_hls.average_errors(rows)
        assert averages["hls"] >= 0 and averages["smart"] >= 0
        assert fig7_hls.format_rows(rows)

    def test_fig8(self):
        from repro.experiments import fig8_phases

        rows = fig8_phases.run(TINY)
        averages = fig8_phases.average_errors(rows)
        assert set(averages) == {"whole", "per_sample", "simpoint"}
        assert fig8_phases.format_rows(rows)

    def test_table4(self):
        from repro.experiments import table4_relative

        rows = table4_relative.run(
            TINY, sweeps=("window",), points={"window": (32, 128)})
        assert rows
        for row in rows:
            assert row["sweep"] == "window"
            assert row["relative_error"] >= 0
        assert table4_relative.format_rows(rows)

    def test_sec46(self):
        from repro.experiments import sec46_design_space

        outcome = sec46_design_space.run(
            "gzip", TINY, ruu_sizes=(16, 64), lsq_sizes=(8,),
            widths=(4,))
        assert outcome["grid_points"] == 2
        assert outcome["candidates_verified"] >= 1
        assert sec46_design_space.format_rows([outcome])

    def test_ablation_workload_models(self):
        from repro.experiments import ablation_workload_models

        rows = ablation_workload_models.run(TINY)
        averages = ablation_workload_models.average_errors(rows)
        assert set(averages) == set(ablation_workload_models.MODELS)
        assert ablation_workload_models.format_rows(rows)

    def test_ablation_fifo_size(self):
        from repro.experiments import ablation_fifo_size

        rows = ablation_fifo_size.run(TINY, fifo_sizes=(1, 32))
        gaps = ablation_fifo_size.average_gaps(rows)
        assert set(gaps) == {1, 32}
        assert ablation_fifo_size.format_rows(rows)

    def test_ablation_reduction(self):
        from repro.experiments import ablation_reduction

        rows = ablation_reduction.run("gzip", TINY, factors=(2.0, 8.0))
        assert rows[0]["nodes_kept"] >= rows[1]["nodes_kept"]
        assert ablation_reduction.format_rows(rows)

    def test_extension_inorder(self):
        from repro.experiments import extension_inorder

        rows = extension_inorder.run(TINY)
        averages = extension_inorder.average_errors(rows)
        assert set(averages) == {"raw_only", "with_anti"}
        for row in rows:
            assert row["inorder_ipc"] <= row["ooo_ipc"] + 1e-9
        assert extension_inorder.format_rows(rows)

    def test_speedup(self):
        from repro.experiments import speedup

        rows = speedup.run(TINY)
        for row in rows:
            assert row["eds_seconds"] > 0
            assert row["ss_seconds"] > 0
            assert row["synthetic_instructions"] > 0
        assert speedup.format_rows(rows)
