"""Content-addressed result cache: keying, integrity, fault injection."""

import json

from repro.config import baseline_config
from repro.runner.faults import FaultPlan
from repro.dse.cache import ResultCache, result_key
from repro.dse.space import apply_overrides, config_hash

PROFILE_HASH = "p" * 64
METRICS = {"ipc": 1.5, "epc": 20.0, "edp": 8.9,
           "synthetic_instructions": 1000}


class TestKeying:
    def test_key_is_stable(self):
        assert result_key(PROFILE_HASH, "c" * 64, 0, 6.0) == \
            result_key(PROFILE_HASH, "c" * 64, 0, 6.0)

    def test_changed_config_field_misses(self):
        base = baseline_config()
        changed = apply_overrides(base, {"ruu_size": 64})
        assert result_key(PROFILE_HASH, config_hash(base), 0, 6.0) != \
            result_key(PROFILE_HASH, config_hash(changed), 0, 6.0)

    def test_changed_profile_misses(self):
        chash = config_hash(baseline_config())
        assert result_key("a" * 64, chash, 0, 6.0) != \
            result_key("b" * 64, chash, 0, 6.0)

    def test_seed_and_reduction_factor_in_key(self):
        chash = config_hash(baseline_config())
        keys = {result_key(PROFILE_HASH, chash, seed, factor)
                for seed in (0, 1) for factor in (4.0, 6.0)}
        assert len(keys) == 4


class TestStore:
    def test_round_trip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = result_key(PROFILE_HASH, "c" * 64, 0, 6.0)
        assert cache.get(key) is None
        cache.put(key, METRICS, meta={"task_id": "t"})
        entry = cache.get(key)
        assert entry["metrics"] == METRICS
        assert entry["meta"]["task_id"] == "t"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert len(cache) == 1

    def test_corrupt_entry_discarded_and_remissed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = result_key(PROFILE_HASH, "c" * 64, 0, 6.0)
        path = cache.put(key, METRICS)
        # Bit-flip the payload: the checksum no longer matches.
        data = json.loads(path.read_text())
        data["metrics"]["ipc"] = 99.0
        path.write_text(json.dumps(data))
        assert cache.get(key) is None
        assert cache.stats.corrupt_discarded == 1
        assert not path.exists()  # discarded for re-evaluation

    def test_truncated_entry_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = result_key(PROFILE_HASH, "c" * 64, 0, 6.0)
        path = cache.put(key, METRICS)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(key) is None
        assert cache.stats.corrupt_discarded == 1

    def test_fault_plan_corrupts_fresh_writes(self, tmp_path):
        plan = FaultPlan(cache_corrupt_rate=1.0)
        cache = ResultCache(tmp_path, fault_plan=plan)
        key = result_key(PROFILE_HASH, "c" * 64, 0, 6.0)
        cache.put(key, METRICS)
        assert cache.get(key) is None  # injected corruption detected
        assert cache.stats.corrupt_discarded == 1

    def test_fault_plan_from_env_reads_cache_rate(self):
        plan = FaultPlan.from_env({"REPRO_FAULT_CACHE_RATE": "1.0"})
        assert plan is not None
        assert plan.cache_corrupt_rate == 1.0
        assert FaultPlan.from_env({}) is None


class TestPhantomEntries:
    """kill -9 between a writer's index update and its (re)written
    object leaves the shard index pointing at nothing; the first read
    that notices must de-index the ghost and sweep the dead writer's
    orphaned tmp."""

    def _key(self):
        return result_key(PROFILE_HASH, "c" * 64, 0, 6.0)

    def test_indexed_phantom_is_deindexed_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = self._key()
        path = cache.put(key, METRICS)
        assert len(cache) == 1
        path.unlink()  # the kill-mid-evict interleave
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt_discarded == 0  # a miss, not corruption
        assert len(fresh) == 0

    def test_live_writer_tmp_survives_the_sweep(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        key = self._key()
        path = cache.put(key, METRICS)
        path.unlink()
        inflight = path.with_name(f"{path.name}.{os.getpid()}.0.tmp")
        inflight.write_text("{}")  # our own pid: a live writer
        assert ResultCache(tmp_path).get(key) is None
        assert inflight.exists()

    def test_kill_minus_9_mid_put_leaves_no_phantom(self, tmp_path):
        """End to end: a subprocess is SIGKILLed exactly at the
        ``os.replace`` of a re-put (index already carries the key from
        an earlier put, the object is gone, the tmp is orphaned).  The
        next reader sees one clean miss and a store that counts zero
        entries."""
        import os
        import signal
        import subprocess
        import sys
        import textwrap
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[1] / "src")
        key = self._key()
        script = textwrap.dedent(f"""
            import os, signal
            from repro.dse.cache import ResultCache
            import repro.runner.checkpoint as checkpoint

            cache = ResultCache({str(tmp_path)!r})
            key = {key!r}
            path = cache.put(key, {METRICS!r})
            path.unlink()  # the eviction half of the interleave
            # Die at the atomic-rename instant of the re-put: tmp
            # written, object never lands, finally never runs.
            checkpoint.os.replace = \\
                lambda a, b: os.kill(os.getpid(), signal.SIGKILL)
            cache.put(key, {METRICS!r})
        """)
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        orphans = list(tmp_path.rglob("*.tmp"))
        assert orphans, "the kill must strand the writer's tmp"
        cache = ResultCache(tmp_path)
        assert len(cache) == 1  # the ghost, before anyone reads
        assert cache.get(key) is None
        assert cache.stats.corrupt_discarded == 0
        assert list(tmp_path.rglob("*.tmp")) == []  # debris swept
        assert len(cache) == 0
