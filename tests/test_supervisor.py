"""Worker supervision: BrokenProcessPool recovery, poison-point
quarantine, serial-fallback degradation, and the lease/attribution
helpers underneath."""

import json
import signal

import pytest

from repro.config import baseline_config
from repro.core.profiler import profile_trace
from repro.errors import WorkerCrashError
from repro.faults import ChaosPlan
from repro.frontend.functional import run_program
from repro.workloads.generator import WorkloadConfig, generate_program
from repro.dse import SweepEngine, SweepSpec, SupervisorPolicy
from repro.dse.supervisor import (
    Quarantine,
    clear_lease,
    lease_path,
    read_leases,
    suspect_task_ids,
    write_lease,
)


@pytest.fixture(scope="module")
def profile():
    program = generate_program(WorkloadConfig(
        name="unit", seed=7, n_blocks=12, mean_block_size=4,
        working_set_kb=32, n_memory_streams=4))
    trace = run_program(program, n_instructions=1200)
    return profile_trace(trace, baseline_config(), order=1)


@pytest.fixture(scope="module")
def points():
    spec = SweepSpec(name="sup", mode="grid", parameters=(
        ("ruu_size", (16, 32, 64)), ("lsq_size", (8,)),
        ("width", (2,))))
    expanded = spec.expand()
    assert len(expanded) == 3
    return expanded


@pytest.fixture(scope="module")
def clean(profile, points):
    sweep = SweepEngine(profile, jobs=2, fault_plan=None,
                        experiment="sup", benchmark="unit").evaluate(
        points, seeds=(0,), reduction_factor=12.0)
    assert all(r.ok for r in sweep.results)
    return sweep


def metrics_map(sweep):
    return {r.point.point_id: r.per_seed for r in sweep.results}


class TestLeases:
    def test_write_read_clear_roundtrip(self, tmp_path):
        write_lease(tmp_path, "exp/bench/p/seed0", dispatch=2, pid=123)
        leases = read_leases(tmp_path)
        assert len(leases) == 1
        assert leases[0]["task_id"] == "exp/bench/p/seed0"
        assert leases[0]["dispatch"] == 2 and leases[0]["pid"] == 123
        clear_lease(tmp_path, "exp/bench/p/seed0")
        assert read_leases(tmp_path) == []

    def test_clear_missing_lease_is_noop(self, tmp_path):
        clear_lease(tmp_path, "never-written")

    def test_unreadable_lease_skipped(self, tmp_path):
        lease_path(tmp_path, "junk").write_text("not json")
        write_lease(tmp_path, "good", dispatch=1, pid=1)
        leases = read_leases(tmp_path)
        assert [lease["task_id"] for lease in leases] == ["good"]


class TestCrashAttribution:
    def test_abnormal_exit_blamed(self):
        leases = [{"task_id": "a", "pid": 10},
                  {"task_id": "b", "pid": 11}]
        suspects = suspect_task_ids(
            leases, {10: 87, 11: -int(signal.SIGTERM)})
        assert suspects == ["a"]

    def test_sigterm_and_alive_workers_innocent(self):
        leases = [{"task_id": "a", "pid": 10},
                  {"task_id": "b", "pid": 11}]
        assert suspect_task_ids(
            leases, {10: None, 11: -int(signal.SIGTERM)}) == []

    def test_no_exit_codes_blames_all_leased(self):
        leases = [{"task_id": "a", "pid": 10},
                  {"task_id": "b", "pid": 11}]
        assert suspect_task_ids(leases, {}) == ["a", "b"]

    def test_no_leases_no_suspects(self):
        assert suspect_task_ids([], {}) == []


class TestQuarantineManifest:
    def test_manifest_written_with_records(self, tmp_path):
        quarantine = Quarantine(path=tmp_path / "q" / "poison.json",
                                max_point_retries=1)
        task = {"task_id": "exp/bench/p/seed0", "point_id": "p",
                "benchmark": "bench", "base_seed": 0,
                "derived_seed": 42, "reduction_factor": 12.0,
                "config": {"ruu_size": 16}}
        quarantine.add(task, crashes=2,
                       last_error={"type": "WorkerCrashError",
                                   "message": "died"})
        path = quarantine.write()
        payload = json.loads(path.read_text())
        assert payload["format"] == 1
        assert payload["max_point_retries"] == 1
        (record,) = payload["quarantined"]
        assert record["task_id"] == "exp/bench/p/seed0"
        assert record["config"]["ruu_size"] == 16
        assert record["crashes"] == 2
        assert record["last_error"]["type"] == "WorkerCrashError"

    def test_manifest_written_even_when_empty(self, tmp_path):
        quarantine = Quarantine(path=tmp_path / "poison.json")
        path = quarantine.write()
        assert json.loads(path.read_text())["quarantined"] == []

    def test_no_path_no_write(self):
        assert Quarantine(path=None).write() is None


class TestBrokenPoolRecovery:
    def test_transient_kill_requeued_and_identical(self, profile,
                                                   points, clean):
        plan = ChaosPlan.parse("worker-kill:match=ruu_size=16,attempts=1")
        sweep = SweepEngine(profile, jobs=2, fault_plan=plan,
                            experiment="sup", benchmark="unit").evaluate(
            points, seeds=(0,), reduction_factor=12.0)
        assert all(r.ok for r in sweep.results)
        assert sweep.quarantined == 0
        assert metrics_map(sweep) == metrics_map(clean)

    def test_poison_point_quarantined(self, profile, points, clean,
                                      tmp_path):
        plan = ChaosPlan.parse("worker-kill:match=ruu_size=16")
        engine = SweepEngine(
            profile, jobs=2, fault_plan=plan, experiment="sup",
            benchmark="unit",
            supervisor_policy=SupervisorPolicy(max_point_retries=1),
            quarantine_path=tmp_path / "poison.json")
        sweep = engine.evaluate(points, seeds=(0,),
                                reduction_factor=12.0)
        assert sweep.quarantined == 1
        poisoned = [r for r in sweep.results if r.quarantined_seeds]
        assert len(poisoned) == 1
        assert "ruu_size=16" in poisoned[0].point.point_id
        assert not poisoned[0].ok
        (error,) = poisoned[0].errors
        assert error["type"] == "WorkerCrashError"
        # survivors still byte-identical to the fault-free run
        healthy = metrics_map(sweep)
        del healthy[poisoned[0].point.point_id]
        expected = metrics_map(clean)
        assert all(expected[k] == v for k, v in healthy.items())
        # manifest on disk records the poison point's config
        payload = json.loads((tmp_path / "poison.json").read_text())
        (record,) = payload["quarantined"]
        assert record["config"]["ruu_size"] == 16
        assert record["crashes"] == 2  # initial dispatch + 1 retry
        assert sweep.quarantine_manifest == str(tmp_path / "poison.json")

    def test_serial_fallback_completes_sweep(self, profile, points,
                                             clean):
        plan = ChaosPlan.parse("worker-kill:rate=1")
        sweep = SweepEngine(
            profile, jobs=2, fault_plan=plan, experiment="sup",
            benchmark="unit",
            supervisor_policy=SupervisorPolicy(
                max_point_retries=99, max_pool_rebuilds=0)).evaluate(
            points, seeds=(0,), reduction_factor=12.0)
        assert all(r.ok for r in sweep.results)
        assert metrics_map(sweep) == metrics_map(clean)

    def test_summary_reports_quarantine(self, profile, points):
        plan = ChaosPlan.parse("worker-kill:match=ruu_size=16")
        sweep = SweepEngine(
            profile, jobs=2, fault_plan=plan, experiment="sup",
            benchmark="unit",
            supervisor_policy=SupervisorPolicy(max_point_retries=0)
        ).evaluate(points, seeds=(0,), reduction_factor=12.0)
        assert "1 quarantined" in sweep.summary()
        assert sweep.total_tasks == 3


class TestPolicyValidation:
    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_point_retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_pool_rebuilds=-1)

    def test_worker_crash_error_retryable(self):
        assert WorkerCrashError("boom").retryable is True
