#!/usr/bin/env python3
"""Delayed-update branch profiling study (paper §2.1.3, Figures 3 & 5).

Shows why profiling tools must model *delayed update*: a pipelined
machine looks branch predictions up at fetch but trains the predictor
at dispatch, so profiling with immediate update underestimates the
misprediction rate — and statistical simulation inherits that error.

Run:  python examples/branch_profiling_study.py
"""

from repro import (
    BranchPredictorUnit,
    baseline_config,
    build_benchmark,
    profile_branches_delayed,
    profile_branches_immediate,
    profile_trace,
    run_execution_driven,
    run_statistical_simulation,
)
from repro.branch.profiler import mispredictions_per_kilo_instruction
from repro.frontend import run_program_with_warmup

BENCHMARKS = ("bzip2", "eon", "perlbmk", "vpr")


def main() -> None:
    config = baseline_config()

    print("mispredictions per 1,000 instructions (Figure 3)")
    print(f"{'benchmark':10} {'execution-driven':>17} "
          f"{'immediate':>10} {'delayed':>8}")
    prepared = {}
    for name in BENCHMARKS:
        warm, trace = run_program_with_warmup(build_benchmark(name),
                                              warmup=30_000,
                                              n_instructions=40_000)
        prepared[name] = (warm, trace)
        eds, _ = run_execution_driven(trace, config, warmup_trace=warm)
        immediate = profile_branches_immediate(
            trace, BranchPredictorUnit(config.predictor))
        delayed = profile_branches_delayed(
            trace, BranchPredictorUnit(config.predictor),
            fifo_size=config.ifq_size)
        print(f"{name:10} "
              f"{eds.mispredictions_per_kilo_instruction:>17.2f} "
              f"{mispredictions_per_kilo_instruction(immediate, len(trace)):>10.2f} "
              f"{mispredictions_per_kilo_instruction(delayed, len(trace)):>8.2f}")

    print("\nimpact on statistical simulation accuracy (Figure 5, "
          "perfect caches)")
    print(f"{'benchmark':10} {'immediate-update err':>21} "
          f"{'delayed-update err':>19}")
    for name in BENCHMARKS:
        warm, trace = prepared[name]
        reference, _ = run_execution_driven(trace, config,
                                            perfect_caches=True,
                                            warmup_trace=warm)
        errors = {}
        for mode in ("immediate", "delayed"):
            profile = profile_trace(trace, config, order=1,
                                    branch_mode=mode,
                                    perfect_caches=True,
                                    warmup_trace=warm)
            report = run_statistical_simulation(trace, config,
                                                profile=profile,
                                                reduction_factor=6,
                                                seed=0)
            errors[mode] = abs(report.ipc - reference.ipc) / reference.ipc
        print(f"{name:10} {errors['immediate'] * 100:>20.1f}% "
              f"{errors['delayed'] * 100:>18.1f}%")

    print("\nThe FIFO-based delayed-update profiler (lookup on entry, "
          "update on exit, squash on detected mispredictions) restores "
          "the misprediction rates the pipeline actually sees.")


if __name__ == "__main__":
    main()
