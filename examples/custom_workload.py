#!/usr/bin/env python3
"""Characterizing a custom workload with a statistical flow graph.

Defines a new workload from scratch (not one of the SPEC-named suite),
executes it, and inspects its statistical profile: SFG size per order k,
hottest control-flow contexts, dependency-distance spread and the
microarchitecture-dependent branch/cache characteristics.

Run:  python examples/custom_workload.py
"""

from repro import (
    IClass,
    WorkloadConfig,
    baseline_config,
    generate_program,
    profile_trace,
)
from repro.frontend import run_program_with_warmup


def main() -> None:
    # A pointer-chasing, moderately branchy workload with a working set
    # that blows through the L1 but fits in the L2.
    workload = WorkloadConfig(
        name="chaser",
        seed=2024,
        n_blocks=40,
        mean_block_size=6,
        working_set_kb=256,
        stream_kinds={"chase": 0.6, "strided": 0.2, "hot": 0.2},
        loop_fraction=0.3,
        pattern_fraction=0.3,
        indirect_fraction=0.05,
        code_footprint_kb=12,
        dependency_locality=0.5,
    )
    program = generate_program(workload)
    warm, trace = run_program_with_warmup(program, warmup=20_000,
                                          n_instructions=30_000)
    config = baseline_config()

    print(f"workload '{workload.name}': {program.num_blocks} blocks, "
          f"{program.static_instruction_count} static instructions")
    mix = trace.instruction_mix()
    print("dynamic mix: " + ", ".join(
        f"{iclass.name.lower()} {fraction * 100:.0f}%"
        for iclass, fraction in sorted(mix.items(),
                                       key=lambda kv: -kv[1])[:5]))

    print("\nSFG size by order (paper Table 3 view):")
    for order in (0, 1, 2, 3):
        profile = profile_trace(trace, config, order=order,
                                branch_mode="perfect",
                                perfect_caches=True)
        print(f"  k={order}: {profile.num_nodes} nodes")

    profile = profile_trace(trace, config, order=1, warmup_trace=warm)
    sfg = profile.sfg

    print("\nhottest order-1 contexts (history -> block):")
    hottest = sorted(sfg.contexts.items(),
                     key=lambda kv: -kv[1].occurrences)[:5]
    for context, stats in hottest:
        share = stats.occurrences / sfg.total_block_executions
        taken = stats.taken / stats.occurrences
        print(f"  {context}: {stats.occurrences} executions "
              f"({share * 100:.1f}%), block size {stats.block_size}, "
              f"P(taken)={taken:.2f}")

    # Aggregate dependency distances and locality events.
    distances = {}
    loads = misses = 0
    for stats in sfg.contexts.values():
        scale = stats.occurrences
        for slot, iclass in enumerate(stats.iclasses):
            if iclass is IClass.LOAD:
                loads += scale
                misses += stats.dl1[slot]
            for hist in stats.dep_hists[slot]:
                for distance, count in hist.items():
                    distances[distance] = distances.get(distance, 0) \
                        + count
    total = sum(distances.values())
    short = sum(c for d, c in distances.items() if d <= 8) / total
    print(f"\ndependency distances: {total:,} recorded, "
          f"{short * 100:.0f}% within 8 instructions "
          f"(tight chains limit ILP)")
    print(f"L1 D-cache miss rate of loads: {misses / loads * 100:.1f}% "
          f"(annotated per context on the SFG)")


if __name__ == "__main__":
    main()
