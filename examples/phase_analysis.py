#!/usr/bin/env python3
"""Program phases, SimPoint and statistical simulation (paper §4.4).

Compares three ways to estimate a long run's IPC without simulating all
of it in detail:

* one statistical profile of the whole stream,
* per-sample statistical profiles (phase-aware),
* SimPoint: cluster basic-block vectors, simulate representative
  intervals in detail with functional warming.

Run:  python examples/phase_analysis.py [benchmark]
"""

import sys

from repro import (
    baseline_config,
    build_benchmark,
    run_execution_driven,
    run_statistical_simulation,
)
from repro.baselines import run_simpoint, select_simpoints
from repro.frontend import run_program_with_warmup


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "eon"
    config = baseline_config()
    warm, trace = run_program_with_warmup(build_benchmark(name),
                                          warmup=40_000,
                                          n_instructions=60_000)
    interval = 5_000

    reference, _ = run_execution_driven(trace, config, warmup_trace=warm)
    print(f"{name}: reference IPC {reference.ipc:.3f} over "
          f"{len(trace):,} instructions\n")

    selection = select_simpoints(trace, interval=interval, max_k=5,
                                 seed=0)
    print(f"SimPoint clustering: k = {selection.k} phases, "
          f"representatives {selection.representatives} with weights "
          f"{[round(w, 2) for w in selection.weights]}")
    simpoint = run_simpoint(trace, config, interval=interval, max_k=5,
                            seed=0, warmup_trace=warm)
    simpoint_error = abs(simpoint["ipc"] - reference.ipc) / reference.ipc
    print(f"SimPoint estimate: IPC {simpoint['ipc']:.3f} "
          f"(error {simpoint_error * 100:.1f}%), "
          f"{simpoint['simulated_instructions']:,} instructions "
          f"simulated in detail\n")

    report = run_statistical_simulation(trace, config, order=1,
                                        reduction_factor=6, seed=0,
                                        warmup_trace=warm)
    ss_error = abs(report.ipc - reference.ipc) / reference.ipc
    print(f"Statistical simulation: IPC {report.ipc:.3f} "
          f"(error {ss_error * 100:.1f}%), synthetic trace of "
          f"{len(report.synthetic_trace):,} instructions")

    print("\nTrade-off (paper section 4.4): SimPoint tends to be more "
          "accurate, but simulates far more instructions in detail and "
          "re-simulates them for every cache/predictor change; "
          "statistical simulation re-profiles instead and then sweeps "
          "designs at synthetic-trace speed.")


if __name__ == "__main__":
    main()
