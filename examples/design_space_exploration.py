#!/usr/bin/env python3
"""Design space exploration with statistical simulation (paper §4.6).

Profiles a workload once, then sweeps a window/width design grid with
the fast synthetic-trace simulator to compute the energy-delay product
of every point.  The best candidates are re-checked with the detailed
simulator — the paper's proposed use of statistical simulation: find
the interesting region fast, confirm it slowly.

Run:  python examples/design_space_exploration.py [benchmark]
"""

import sys
import time

from repro import (
    baseline_config,
    build_benchmark,
    energy_delay_product,
    profile_trace,
    run_execution_driven,
    run_statistical_simulation,
)
from repro.frontend import run_program_with_warmup

RUU_SIZES = (16, 32, 64, 128)
LSQ_SIZES = (8, 16, 32)
WIDTHS = (2, 4, 8)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    base = baseline_config()

    program = build_benchmark(name)
    warm, trace = run_program_with_warmup(program, warmup=30_000,
                                          n_instructions=40_000)

    # One profile serves the whole grid: window and width are not part
    # of the statistical profile (section 2.1.1).
    profile = profile_trace(trace, base, order=1, branch_mode="delayed",
                            warmup_trace=warm)
    print(f"{name}: profiled {len(trace):,} instructions "
          f"({profile.num_nodes} SFG nodes)")

    grid = []
    for ruu in RUU_SIZES:
        for lsq in LSQ_SIZES:
            if lsq > ruu:
                continue
            for width in WIDTHS:
                grid.append(base.with_window(ruu, lsq).with_width(width))
    print(f"exploring {len(grid)} design points with synthetic traces...")

    started = time.perf_counter()
    scored = []
    for config in grid:
        report = run_statistical_simulation(trace, config, profile=profile,
                                            reduction_factor=8, seed=0)
        scored.append((report.edp, config, report.ipc))
    scored.sort(key=lambda item: item[0])
    elapsed = time.perf_counter() - started
    print(f"swept in {elapsed:.1f}s "
          f"({elapsed / len(grid):.2f}s per design point)\n")

    print("top designs by statistically-predicted EDP:")
    print(f"{'ruu':>4} {'lsq':>4} {'width':>6} {'SS EDP':>9} "
          f"{'SS IPC':>7} {'EDS EDP':>9}")
    for edp, config, ipc in scored[:5]:
        result, power = run_execution_driven(trace, config,
                                             warmup_trace=warm)
        eds_edp = energy_delay_product(power.total, result.ipc)
        print(f"{config.ruu_size:>4} {config.lsq_size:>4} "
              f"{config.issue_width:>6} {edp:>9.2f} {ipc:>7.3f} "
              f"{eds_edp:>9.2f}")
    print("\nThe detailed simulator confirms the region statistical "
          "simulation identified.")


if __name__ == "__main__":
    main()
