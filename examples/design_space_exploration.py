#!/usr/bin/env python3
"""Design space exploration with statistical simulation (paper §4.6).

Profiles a workload once, then sweeps a window/width design grid with
the `repro.dse` subsystem: design points expand from a declarative
sweep spec, every point is evaluated with the fast synthetic-trace
simulator (in parallel with ``jobs > 1``, cached across runs with a
``cache_dir``), and the best candidates are re-checked with the
detailed simulator — the paper's proposed use of statistical
simulation: find the interesting region fast, confirm it slowly.

Run:  python examples/design_space_exploration.py [benchmark] [jobs]
"""

import sys
import time

from repro import (
    baseline_config,
    build_benchmark,
    energy_delay_product,
    profile_trace,
    run_execution_driven,
)
from repro.dse import (
    ResultCache,
    SweepEngine,
    SweepSpec,
    pareto_front,
    verification_shortlist,
)
from repro.frontend import run_program_with_warmup

SPEC = SweepSpec(
    name="example-window-width",
    mode="grid",
    parameters=(
        ("lsq_size", (8, 16, 32)),
        ("ruu_size", (16, 32, 64, 128)),
        ("width", (2, 4, 8)),
    ),
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    base = baseline_config()

    program = build_benchmark(name)
    warm, trace = run_program_with_warmup(program, warmup=30_000,
                                          n_instructions=40_000)

    # One profile serves the whole grid: window and width are not part
    # of the statistical profile (section 2.1.1).
    profile = profile_trace(trace, base, order=1, branch_mode="delayed",
                            warmup_trace=warm)
    print(f"{name}: profiled {len(trace):,} instructions "
          f"({profile.num_nodes} SFG nodes)")

    points = SPEC.expand(base)
    print(f"exploring {len(points)} design points with synthetic "
          f"traces (jobs={jobs}, cached under ./dse-cache)...")

    engine = SweepEngine(profile, jobs=jobs,
                         cache=ResultCache("dse-cache"),
                         experiment=SPEC.name, benchmark=name)
    started = time.perf_counter()
    sweep = engine.evaluate(points, seeds=(0,), reduction_factor=8)
    elapsed = time.perf_counter() - started
    print(f"swept in {elapsed:.1f}s ({sweep.evaluated} evaluated, "
          f"{sweep.cached} served from cache)\n")

    front = {id(r) for r in pareto_front(sweep.results)}
    shortlist = verification_shortlist(sweep.results, margin=0.03)
    print("top designs by statistically-predicted EDP "
          "(* = EDP/IPC Pareto-optimal):")
    print(f"{'design point':>32} {'SS EDP':>9} {'SS IPC':>7} "
          f"{'EDS EDP':>9}")
    ranked = sorted(sweep.ok_results, key=lambda r: r.metrics["edp"])
    for result in ranked[:5]:
        eds = "-"
        if result in shortlist:
            sim, power = run_execution_driven(trace, result.point.config,
                                              warmup_trace=warm)
            eds = f"{energy_delay_product(power.total, sim.ipc):9.2f}"
        star = "*" if id(result) in front else " "
        print(f"{result.point.point_id:>32}{star} "
              f"{result.metrics['edp']:>8.2f} "
              f"{result.metrics['ipc']:>7.3f} {eds:>9}")
    print("\nThe detailed simulator confirms the region statistical "
          "simulation identified; re-run this script to see the cache "
          "skip every point.")


if __name__ == "__main__":
    main()
