#!/usr/bin/env python3
"""Quickstart: statistical simulation versus detailed simulation.

Builds one synthetic SPEC-like workload, measures it with the detailed
execution-driven simulator, then predicts the same machine's IPC/EPC
from a synthetic trace that is several times shorter — the paper's core
claim (Figure 1 pipeline, Figure 6 accuracy).

Run:  python examples/quickstart.py [benchmark]
"""

import sys
import time

from repro import (
    baseline_config,
    build_benchmark,
    run_execution_driven,
    run_statistical_simulation,
)
from repro.frontend import run_program_with_warmup


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    reduction_factor = 6

    print(f"== {name}: building workload and executing it ==")
    program = build_benchmark(name)
    warm, trace = run_program_with_warmup(program, warmup=40_000,
                                          n_instructions=60_000)
    print(f"reference window: {len(trace):,} instructions "
          f"({len(warm):,} warmup)")

    config = baseline_config()

    print("\n== execution-driven (reference) simulation ==")
    started = time.perf_counter()
    reference, ref_power = run_execution_driven(trace, config,
                                                warmup_trace=warm)
    eds_seconds = time.perf_counter() - started
    print(f"IPC = {reference.ipc:.3f}   EPC = {ref_power.total:.1f} W  "
          f"[{eds_seconds:.2f}s, {reference.cycles:,} cycles]")

    print(f"\n== statistical simulation (R = {reduction_factor}) ==")
    started = time.perf_counter()
    report = run_statistical_simulation(trace, config, order=1,
                                        reduction_factor=reduction_factor,
                                        seed=0, warmup_trace=warm)
    ss_seconds = time.perf_counter() - started
    print(f"SFG nodes: {report.profile.num_nodes}   "
          f"synthetic trace: {len(report.synthetic_trace):,} instructions")
    print(f"IPC = {report.ipc:.3f}   EPC = {report.epc:.1f} W  "
          f"[{ss_seconds:.2f}s including profiling]")

    ipc_error = abs(report.ipc - reference.ipc) / reference.ipc
    epc_error = abs(report.epc - ref_power.total) / ref_power.total
    print(f"\nIPC prediction error: {ipc_error * 100:.1f}%   "
          f"EPC prediction error: {epc_error * 100:.1f}%")
    print("(The synthetic-trace *simulation* itself is what scales: "
          "once profiled, each design point simulates only "
          f"{len(report.synthetic_trace):,} instructions.)")


if __name__ == "__main__":
    main()
