"""Ablation — workload-model structure spectrum (paper section 5).

Expected shape: per-context modeling (the SFG) beats every
structure-free model (independent characteristics, HLS, block-size
correlation) by a wide margin on average.
"""

from conftest import run_once

from repro.experiments import ablation_workload_models


def test_ablation_workload_models(benchmark, scale):
    rows = run_once(benchmark, ablation_workload_models.run, scale)
    print("\n" + ablation_workload_models.format_rows(rows))

    averages = ablation_workload_models.average_errors(rows)
    for unstructured in ("independent", "hls", "size_correlated"):
        assert averages["sfg_k1"] < averages[unstructured]
    # The SFG's average error is in a usable range even at small scale.
    assert averages["sfg_k1"] < 0.25
