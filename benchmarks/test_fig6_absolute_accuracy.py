"""Figure 6 / section 4.2.3 — absolute IPC, EPC and EDP accuracy on the
baseline configuration.

Paper shape: statistical simulation predicts IPC within ~6.6% on
average (worst case ~14%), EPC within ~4%, EDP within ~11%.
"""

from conftest import run_once

from repro.experiments import fig6_absolute


def test_fig6_absolute_accuracy(benchmark, scale):
    rows = run_once(benchmark, fig6_absolute.run, scale)
    print("\n" + fig6_absolute.format_rows(rows))

    averages = fig6_absolute.average_errors(rows)
    # Average errors in the paper's ballpark (generous at small scale).
    assert averages["ipc"] < 0.20
    assert averages["epc"] < 0.10
    # EPC is easier to predict than IPC (as in the paper: 4% vs 6.6%).
    assert averages["epc"] < averages["ipc"]
    # Per-benchmark IPC predictions stay in the right order of
    # magnitude (the bars of Figure 6 track each other).
    for row in rows:
        assert row["ipc_error"] < 0.40
