"""Figure 8 — modeling program phases and comparison with SimPoint.

Paper shape: per-sample statistical profiles improve only slightly over
one whole-stream profile; SimPoint is more accurate than statistical
simulation but simulates far more instructions in detail.
"""

from conftest import run_once

from repro.experiments import fig8_phases


def test_fig8_phases_simpoint(benchmark, scale):
    rows = run_once(benchmark, fig8_phases.run, scale)
    print("\n" + fig8_phases.format_rows(rows))

    averages = fig8_phases.average_errors(rows)
    # SimPoint wins on accuracy (paper: 2% vs 7.2%)...
    assert averages["simpoint"] < averages["whole"]
    # ...but needs detailed simulation of many more instructions than
    # the synthetic traces (and re-simulates per design change).
    for row in rows:
        assert row["simpoint_instructions"] > 0
    # Per-sample profiling lands near whole-stream profiling (the paper
    # reports only a slight difference).
    assert abs(averages["per_sample"] - averages["whole"]) < 0.10
