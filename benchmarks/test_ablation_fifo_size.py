"""Ablation — delayed-update FIFO size (paper section 2.1.3).

Expected shape: the paper's prescription (FIFO size = IFQ size, here
32) minimizes the gap between profiled and pipeline-observed
misprediction rates; size 1 (= immediate update) underestimates.
"""

from conftest import run_once

from repro.experiments import ablation_fifo_size


def test_ablation_fifo_size(benchmark, scale):
    rows = run_once(benchmark, ablation_fifo_size.run, scale,
                    fifo_sizes=(1, 8, 32, 128))
    print("\n" + ablation_fifo_size.format_rows(rows))

    gaps = ablation_fifo_size.average_gaps(rows)
    # The IFQ-sized FIFO is the best (or tied-best) of the swept sizes.
    assert gaps[32] <= min(gaps.values()) + 0.25
    # Immediate update (size 1) is clearly worse.
    assert gaps[1] > gaps[32]
