"""Section 4.6 — EDP design space exploration.

Paper shape: exploring a window/width grid with statistical simulation
identifies the true energy-delay-optimal design (7 of 10 benchmarks)
or a design within ~1.25% of it.
"""

import os

from conftest import run_once

from repro.experiments import sec46_design_space


def _grid_kwargs():
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full":
        return {}
    return {
        "ruu_sizes": (16, 64, 128),
        "lsq_sizes": (8, 32),
        "widths": (2, 8),
    }


def test_sec46_design_space(benchmark, scale):
    benchmarks = scale.benchmarks[:3]
    rows = run_once(benchmark, sec46_design_space.run_suite,
                    benchmarks, scale, **_grid_kwargs())
    print("\n" + sec46_design_space.format_rows(rows))

    for row in rows:
        # SS identifies the optimum or a design in a very short range
        # of it (paper: worst case 1.24%; loosened for small scale).
        assert row["found_optimal"] or row["edp_gap"] < 0.05
