"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at the
scale selected by ``REPRO_BENCH_SCALE`` (``quick`` by default, ``full``
for the paper-shaped run) and prints the same rows the paper reports.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.experiments.common import bench_scale


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are full table/figure regenerations (seconds to
    minutes); statistical repetition across rounds is neither needed
    nor affordable, so a single timed round is used.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
