"""§4.1 — simulation-speed claim.

Expected shape: per design point, synthetic-trace simulation is
several times faster than execution-driven simulation (tracking the
reduction factor R), and the one-time profiling cost amortizes within
a handful of design points.
"""

from conftest import run_once

from repro.experiments import speedup
from repro.experiments.common import mean


def test_speedup(benchmark, scale):
    rows = run_once(benchmark, speedup.run, scale)
    print("\n" + speedup.format_rows(rows))

    speedups = [row["per_point_speedup"] for row in rows]
    # Per design point, SS is clearly faster than EDS; the mean
    # speedup should be at least about half of R (the synthetic
    # simulator also skips cache/predictor work).
    assert mean(speedups) > scale.reduction_factor / 2
    for row in rows:
        assert row["breakeven_points"] < 50
