"""Table 1 — baseline IPC per benchmark.

Paper values span 0.51 (crafty) to 1.94 (gzip); the reproduction
asserts a comparable spread with the streaming compressors on top.
"""

from conftest import run_once

from repro.experiments import table1_baseline


def test_table1_baseline_ipc(benchmark, scale):
    rows = run_once(benchmark, table1_baseline.run, scale)
    print("\n" + table1_baseline.format_rows(rows))

    ipcs = {row["benchmark"]: row["ipc"] for row in rows}
    # A real spread across the suite (paper: ~3.8x between extremes).
    assert max(ipcs.values()) / min(ipcs.values()) > 2.0
    # The streaming compressor beats the branchy/memory-bound codes.
    if "gzip" in ipcs and "twolf" in ipcs:
        assert ipcs["gzip"] > ipcs["twolf"]
    if "gzip" in ipcs and "parser" in ipcs:
        assert ipcs["gzip"] > ipcs["parser"]
