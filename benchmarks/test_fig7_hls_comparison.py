"""Figure 7 — HLS versus SMART-HLS on SimpleScalar's default
configuration.

Paper shape: SMART-HLS (this paper's framework) is far more accurate
than HLS (1.8% vs 10.1% average IPC error), because HLS models the
workload without per-basic-block structure.
"""

from conftest import run_once

from repro.experiments import fig7_hls


def test_fig7_hls_comparison(benchmark, scale):
    rows = run_once(benchmark, fig7_hls.run, scale)
    print("\n" + fig7_hls.format_rows(rows))

    averages = fig7_hls.average_errors(rows)
    # SMART-HLS is clearly more accurate on average.
    assert averages["smart"] < averages["hls"]
    assert averages["smart"] < 0.12
    # And on (almost) every benchmark individually.
    better = sum(1 for row in rows
                 if row["smart_error"] <= row["hls_error"])
    assert better >= len(rows) - 1
