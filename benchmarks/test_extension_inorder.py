"""Extension — WAW/WAR modeling for in-order / non-renaming machines
(the future-work extension of paper section 2.1.1).

Expected shape: on an in-order machine that enforces anti-dependencies,
RAW-only synthesis overestimates performance; sampling the profiled
WAW/WAR distributions restores accuracy.
"""

from conftest import run_once

from repro.experiments import extension_inorder


def test_extension_inorder(benchmark, scale):
    rows = run_once(benchmark, extension_inorder.run, scale)
    print("\n" + extension_inorder.format_rows(rows))

    averages = extension_inorder.average_errors(rows)
    # Modeling anti-dependencies improves average accuracy.
    assert averages["with_anti"] < averages["raw_only"]
    assert averages["with_anti"] < 0.15
    # Renaming buys real performance: the in-order machine is slower.
    for row in rows:
        assert row["inorder_ipc"] < row["ooo_ipc"]
