"""Figure 3 — branch mispredictions per 1K instructions under
execution-driven simulation, immediate-update profiling and
delayed-update profiling.

Paper shape: immediate update underestimates; delayed update closely
tracks execution-driven simulation.
"""

from conftest import run_once

from repro.experiments import fig3_branch_profiling


def test_fig3_branch_profiling(benchmark, scale):
    rows = run_once(benchmark, fig3_branch_profiling.run, scale)
    print("\n" + fig3_branch_profiling.format_rows(rows))

    for row in rows:
        eds = row["execution_driven"]
        immediate = row["immediate_update"]
        delayed = row["delayed_update"]
        # Immediate update never overestimates the pipeline's rate by
        # much; delayed update stays close to execution-driven.
        assert immediate <= eds * 1.10 + 0.5
        if eds > 1.0:
            assert abs(delayed - eds) / eds < 0.25
    # At least one benchmark shows the big immediate-vs-EDS gap that
    # motivates the paper's contribution (eon/perlbmk in the paper).
    gaps = [row["execution_driven"] - row["immediate_update"]
            for row in rows]
    assert max(gaps) > 2.0
