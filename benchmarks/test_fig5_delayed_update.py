"""Figure 5 — IPC accuracy with delayed- versus immediate-update branch
profiling (perfect caches assumed).

Paper shape: delayed-update profiling improves average accuracy, with
the largest gains on the benchmarks with the biggest Figure 3 gaps.
"""

from conftest import run_once

from repro.experiments import fig5_delayed_update
from repro.experiments.common import mean


def test_fig5_delayed_update(benchmark, scale):
    rows = run_once(benchmark, fig5_delayed_update.run, scale)
    print("\n" + fig5_delayed_update.format_rows(rows))

    immediate = mean([row["immediate_error"] for row in rows])
    delayed = mean([row["delayed_error"] for row in rows])
    # Modeling delayed update improves average accuracy.
    assert delayed < immediate
    # And at least one benchmark improves substantially (eon/perlbmk
    # in the paper).
    improvements = [row["immediate_error"] - row["delayed_error"]
                    for row in rows]
    assert max(improvements) > 0.05
