"""Ablation — synthetic trace reduction factor R (paper section 2.2).

Expected shape: increasing R shrinks the reduced graph (nodes and
block mass) while the surviving hot mass stays interconnected ("the
interconnection is still strong enough"); accuracy degrades gracefully
rather than collapsing.
"""

from conftest import run_once

from repro.experiments import ablation_reduction


def test_ablation_reduction(benchmark, scale):
    name = "parser" if "parser" in scale.benchmarks else \
        scale.benchmarks[0]
    # Cap R to the reference size: pushing R to where synthetic traces
    # fall under ~1K instructions measures noise, not the trade-off.
    factors = ((2.0, 4.0, 8.0) if scale.reference <= 30_000
               else ablation_reduction.DEFAULT_FACTORS)
    rows = run_once(benchmark, ablation_reduction.run, name, scale,
                    factors=factors)
    print("\n" + ablation_reduction.format_rows(rows))

    # Larger R never keeps more nodes or more block mass.
    for a, b in zip(rows, rows[1:]):
        assert b["nodes_kept"] <= a["nodes_kept"]
        assert b["mass_kept"] <= a["mass_kept"] + 1e-9
    # The hot mass remains overwhelmingly in one connected component.
    for row in rows:
        assert row["largest_component_mass"] > 0.5
    # Accuracy degrades gracefully: even the harshest reduction stays
    # within a usable band.
    assert rows[-1]["ipc_error"] < 0.5
