"""Table 4 — relative accuracy across window, width, IFQ, branch
predictor and cache sweeps.

Paper shape: relative prediction errors (trend errors) are small —
generally below ~3% — across all five sweeps and all metrics (IPC,
EPC, occupancies and unit powers).
"""

import os

from conftest import run_once

from repro.experiments import table4_relative
from repro.experiments.common import mean


def _points(scale):
    """Full paper points at full scale; trimmed sweeps otherwise."""
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full":
        return None
    return {
        "window": (16, 32, 64, 128),
        "width": (2, 4, 8),
        "ifq": (8, 16, 32),
        "bpred": (0.25, 1.0, 4.0),
        "cache": (0.5, 1.0, 2.0),
    }


def test_table4_relative_accuracy(benchmark, scale):
    rows = run_once(benchmark, table4_relative.run, scale,
                    points=_points(scale))
    print("\n" + table4_relative.format_rows(rows))

    averages = table4_relative.average_by_sweep(rows)
    # Trend errors are small for every sweep (paper: generally < 3%;
    # the bound is loosened for the reduced scale).
    for sweep, value in averages.items():
        assert value < 0.12, f"{sweep} sweep relative error {value:.3f}"
    # Overall mean tracks the paper's "generally below 3%" headline.
    overall = mean([row["relative_error"] for row in rows])
    assert overall < 0.08
