"""Hot-path micro-benchmark harness (``pytest benchmarks/perf -s``).

Runs the quick before/after bench once and asserts the contract the
CI perf-smoke job enforces: valid schema, byte-identical draws from
the optimized generator, cycle-identical pipeline results, and no
phase more than the tolerance below the pinned baseline.
"""

import json
from pathlib import Path

import pytest

from repro.bench import check_regression, run_hotpath_bench, validate_payload

BASELINE = Path(__file__).with_name("BASELINE_hotpath.json")


@pytest.fixture(scope="module")
def payload():
    return run_hotpath_bench(quick=True, log=print)


def test_schema_valid(payload):
    assert validate_payload(payload) == []


def test_draws_and_results_identical(payload):
    assert payload["draw_stable"]
    assert payload["phases"]["pipeline"]["results_identical"]


def test_no_regression_against_baseline(payload):
    baseline = json.loads(BASELINE.read_text())
    failures = check_regression(payload, baseline, tolerance=0.15)
    assert failures == [], "\n".join(failures)


def test_speedups_reported(payload):
    print("\nspeedups: " + ", ".join(
        f"{name} {value:.2f}x"
        for name, value in sorted(payload["speedups"].items())))
    for value in payload["speedups"].values():
        assert value > 0
