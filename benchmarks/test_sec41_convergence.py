"""Section 4.1 — convergence: IPC coefficient of variation versus
synthetic trace length.

Paper shape: the CoV over synthesis seeds shrinks as synthetic traces
grow (4% at 100K down to 1% at 1M synthetic instructions); statistical
simulation converges quickly to steady-state estimates.
"""

from conftest import run_once

from repro.experiments import sec41_convergence


def test_sec41_convergence(benchmark, scale):
    rows = run_once(benchmark, sec41_convergence.run, "gzip", scale,
                    num_seeds=12)
    print("\n" + sec41_convergence.format_rows(rows))

    # Longer synthetic traces -> lower variation (compare extremes,
    # which is robust to local noise at small scale).
    shortest = rows[0]
    longest = rows[-1]
    assert longest["synthetic_length"] > shortest["synthetic_length"]
    assert longest["cov"] < shortest["cov"]
