"""Table 3 — number of SFG nodes as a function of the order k.

Paper shape: node counts grow monotonically with k, and the
per-benchmark ordering tracks code size (gcc largest, vpr smallest).
"""

from conftest import run_once

from repro.experiments import table3_sfg_size


def test_table3_sfg_size(benchmark, scale):
    rows = run_once(benchmark, table3_sfg_size.run, scale)
    print("\n" + table3_sfg_size.format_rows(rows))

    counts = {row["benchmark"]: row["nodes"] for row in rows}
    for nodes in counts.values():
        orders = sorted(nodes)
        for a, b in zip(orders, orders[1:]):
            assert nodes[a] <= nodes[b]
    # Large-code benchmarks have larger SFGs than small-code ones.
    if "gcc" in counts and "gzip" in counts:
        assert counts["gcc"][1] > counts["gzip"][1]
    if "parser" in counts and "gzip" in counts:
        assert counts["parser"][1] > counts["gzip"][1]
