"""Figure 4 — IPC prediction error versus SFG order k (perfect caches
and perfect branch prediction).

Paper shape: k = 0 can be badly wrong (up to 35%); any k >= 1 is
accurate (< 2% average), and k = 1 is as good as k = 2, 3.
"""

from conftest import run_once

from repro.experiments import fig4_sfg_order


def test_fig4_sfg_order(benchmark, scale):
    rows = run_once(benchmark, fig4_sfg_order.run, scale)
    print("\n" + fig4_sfg_order.format_rows(rows))

    averages = fig4_sfg_order.average_errors(rows)
    # Control-flow correlation matters: k=0 is clearly worse on average.
    assert averages[0] > 2.0 * averages[1]
    # k >= 1 is accurate, and k = 1 is already enough (paper's choice).
    assert averages[1] < 0.05
    assert averages[1] < averages[0]
    for k in (2, 3):
        if k in averages:
            assert abs(averages[k] - averages[1]) < 0.05
